(* herd_lk: run litmus tests against a consistency model — the repository's
   herd7 equivalent.

     herd_lk test.litmus                 # LK model (native)
     herd_lk -model c11 test.litmus      # a shipped model
     herd_lk -model my.cat test.litmus   # any cat file
     herd_lk -v test.litmus              # verdict + witness explanation
     herd_lk -outcomes test.litmus       # all observable outcomes
     herd_lk --timeout 5 huge.litmus     # budgeted: Unknown, not a hang
     herd_lk --json *.litmus             # machine-readable batch report

   Every test runs through the fault-isolated Harness.Runner: parse
   errors, lint errors, budget exhaustion and internal failures become
   classified report entries, and the batch always completes. *)

open Cmdliner

(* One oracle per model name: the native LK value carries its batch and
   SAT engines, cat-interpreted models their batch engine, and the
   operational simulators stay scalar.  {!Exec.Oracle.run} falls back
   enumeratively when the selected backend is missing. *)
let oracle_of_name name : Exec.Oracle.t =
  match String.lowercase_ascii name with
  | "lk" | "lkmm" | "linux" -> Lkmm.oracle
  | "lk-cat" -> Cat.to_oracle ~name:"LK(cat)" (Cat.parse Cat.Stdmodels.lk)
  | "sc" -> Exec.Oracle.of_model (module Models.Sc)
  | "tso" | "x86" -> Exec.Oracle.of_model (module Models.Tso)
  | "c11" -> Exec.Oracle.of_model (module Models.C11)
  | "c11-psc" | "rc11" -> Exec.Oracle.of_model (module Models.C11.Strengthened)
  | _ when Filename.check_suffix name ".cat" ->
      Cat.to_oracle ~name (Cat.load_file name)
  | other -> failwith ("unknown model: " ^ other)

let model_display_name name =
  match String.lowercase_ascii name with
  | "lk" | "lkmm" | "linux" -> "LK"
  | "lk-cat" -> "LK(cat)"
  | "sc" -> "SC"
  | "tso" | "x86" -> "TSO"
  | "c11" -> "C11"
  | "c11-psc" | "rc11" -> "C11+psc"
  | other -> other

(* Verdict forensics (--explain, --explain-diff).  The native LK model
   has its own explainer (which delegates decomposition to lk.cat);
   every other model is explained by the generic cat engine on its own
   source — the shipped twins for the built-in names, or the given
   file. *)
let cat_model_of_name name =
  match String.lowercase_ascii name with
  | "lk" | "lkmm" | "linux" | "lk-cat" -> Some (Lazy.force Cat.lk)
  | "sc" -> Some (Cat.parse Cat.Stdmodels.sc)
  | "tso" | "x86" -> Some (Cat.parse Cat.Stdmodels.tso)
  | "c11" -> Some (Cat.parse Cat.Stdmodels.c11)
  | "c11-psc" | "rc11" -> Some (Cat.parse Cat.Stdmodels.c11_psc)
  | _ when Filename.check_suffix name ".cat" -> Some (Cat.load_file name)
  | _ -> None

let explainer_of_name name =
  match String.lowercase_ascii name with
  | "lk" | "lkmm" | "linux" -> Some Lkmm.Explain.explainer
  | _ -> Option.map Cat.explainer (cat_model_of_name name)

let check_names_of_name name =
  match String.lowercase_ascii name with
  | "lk" | "lkmm" | "linux" -> Lkmm.Explain.check_names
  | _ -> (
      match cat_model_of_name name with
      | Some m -> Cat.check_names m
      | None -> [])

(* Per-entry console output, preserving the classic verdict line for
   completed checks. *)
let print_entry model_name outcomes (e : Harness.Runner.entry) =
  (match (e.Harness.Runner.status, e.Harness.Runner.result) with
  | Harness.Runner.Pass v, Some r ->
      Fmt.pr "Test %s: %a under %s (%d candidate executions, %d consistent)@."
        e.Harness.Runner.item_id Exec.Check.pp_verdict v model_name
        r.Exec.Check.n_candidates r.Exec.Check.n_consistent
  | Harness.Runner.Fail { expected; got }, _ ->
      Fmt.pr "Test %s: FAIL under %s — expected %s, got %s@."
        e.Harness.Runner.item_id model_name
        (Exec.Check.verdict_to_string expected)
        (Exec.Check.verdict_to_string got)
  | Harness.Runner.Gave_up reason, _ ->
      Fmt.pr "Test %s: Unknown under %s (%s; %d candidates enumerated)@."
        e.Harness.Runner.item_id model_name
        (Exec.Budget.reason_to_string reason)
        e.Harness.Runner.n_candidates
  | Harness.Runner.Err err, _ ->
      Fmt.pr "Test %s: %a@." e.Harness.Runner.item_id Harness.Runner.pp_error
        err
  | Harness.Runner.Pass v, None ->
      Fmt.pr "Test %s: %a under %s@." e.Harness.Runner.item_id
        Exec.Check.pp_verdict v model_name);
  (if outcomes then
     match e.Harness.Runner.result with
     | Some r ->
         List.iter
           (fun (o, matches) ->
             Fmt.pr "  %a %s@." Exec.pp_outcome o
               (if matches then "<- condition" else ""))
           r.Exec.Check.outcomes
     | None -> ());
  match e.Harness.Runner.result with
  | Some r when r.Exec.Check.explanations <> [] ->
      List.iter
        (fun ex -> Fmt.pr "%s@." (Exec.Explain.to_string ex))
        r.Exec.Check.explanations
  | _ -> ()

let write_dot path (e : Harness.Runner.entry) source =
  (* prefer the explained counterexample (with its cycle overlay), then
     the witness, then the first candidate if the test at least parses *)
  let x, explain =
    match e.Harness.Runner.result with
    | Some { Exec.Check.counterexample = Some x; explanations; _ } ->
        (Some x, explanations)
    | Some { Exec.Check.witness = Some x; _ } -> (Some x, [])
    | _ -> (
        ( (try
             match Exec.of_test (Litmus.parse source) with
             | x :: _ -> Some x
             | [] -> None
           with _ -> None),
          [] ))
  in
  match x with
  | Some x ->
      Exec.Dot.to_file ~explain path x;
      Fmt.pr "wrote %s@." path
  | None -> ()

(* --explain-diff A,B: run each test under both models with forensics
   on and name the checks failing under one but not the other. *)
let explain_diff ~limits ~backend spec (items : Harness.Runner.item list) =
  let module R = Harness.Runner in
  let a, b =
    match String.split_on_char ',' spec with
    | [ a; b ] -> (String.trim a, String.trim b)
    | _ ->
        failwith
          (Printf.sprintf "--explain-diff expects MODEL,MODEL (got %S)" spec)
  in
  let run m i =
    R.run_item ~limits ~backend ?explainer:(explainer_of_name m)
      ~oracle:(oracle_of_name m)
      { i with R.expected = None }
  in
  let entries =
    List.concat_map
      (fun (i : R.item) ->
        let ea = run a i and eb = run b i in
        let verdict (e : R.entry) =
          match e.R.status with
          | R.Pass v | R.Fail { got = v; _ } -> Exec.Check.verdict_to_string v
          | R.Gave_up reason ->
              "Unknown (" ^ Exec.Budget.reason_to_string reason ^ ")"
          | R.Err err -> Fmt.str "error (%a)" R.pp_error err
        in
        let failing (e : R.entry) =
          match e.R.result with
          | Some r ->
              List.sort_uniq compare
                (List.map
                   (fun (x : Exec.Explain.t) -> x.Exec.Explain.check)
                   r.Exec.Check.explanations)
          | None -> []
        in
        let na = model_display_name a and nb = model_display_name b in
        Fmt.pr "Test %s: %s=%s, %s=%s@." i.R.id na (verdict ea) nb
          (verdict eb);
        let fa = failing ea and fb = failing eb in
        let side n f other_name other_f other_vocab =
          List.iter
            (fun c ->
              if List.mem c other_f then
                Fmt.pr "  both models fail %s@." c
              else if List.mem c other_vocab then
                Fmt.pr "  %s fails %s; %s satisfies it@." n c other_name
              else Fmt.pr "  %s fails %s — not a check of %s@." n c other_name)
            f
        in
        side na fa nb fb (check_names_of_name b);
        side nb (List.filter (fun c -> not (List.mem c fa)) fb) na fa
          (check_names_of_name a);
        if fa = [] && fb = [] then
          Fmt.pr "  no failing checks under either model@.";
        [ ea; eb ])
      items
  in
  R.summarise ~wall:0. entries

(* --shrink: minimise every failing or crashing entry to a reproducer
   next to its input ([<id>.min.litmus]).  Crashes are re-checked in an
   isolated worker; mismatches shrink in-process. *)
let shrink_failures ~limits ~backend ~oracle ~pool_config
    (report : Harness.Runner.report) (items : Harness.Runner.item list) =
  let module R = Harness.Runner in
  let module S = Harness.Shrink in
  let repro_path id =
    (if Filename.check_suffix id ".litmus" then
       Filename.chop_suffix id ".litmus"
     else id)
    ^ ".min.litmus"
  in
  let ast_of (i : R.item) =
    try
      Some
        (match i.R.source with
        | `Ast t -> t
        | `Text s -> Litmus.parse s
        | `File p -> Litmus.parse (R.read_file p))
    with _ -> None
  in
  List.iter2
    (fun (e : R.entry) (i : R.item) ->
      let shrinkable =
        match e.R.status with
        | R.Fail _ | R.Err { cls = R.Crash _; _ } -> true
        | _ -> false
      in
      match (shrinkable, ast_of i) with
      | false, _ | _, None -> ()
      | true, Some t ->
          let check =
            match e.R.status with
            | R.Err { cls = R.Crash _; _ } ->
                fun t' ->
                  S.isolated_check ~config:pool_config ~oracle ~backend
                    ?expected:i.R.expected t'
            | _ ->
                fun t' ->
                  R.run_item ~limits ~backend ~oracle
                    {
                      R.id = t'.Litmus.Ast.name;
                      source = `Ast t';
                      expected = i.R.expected;
                    }
          in
          let o = S.shrink_entry ~check e t in
          let path = repro_path e.R.item_id in
          S.write_reproducer path o.S.reduced;
          Fmt.pr "Shrunk %s: size %d -> %d in %d steps (%d oracle runs); \
                  wrote %s@."
            e.R.item_id o.S.initial_size o.S.final_size o.S.steps
            o.S.oracle_runs path)
    report.R.entries items

let main model verbose outcomes dot explain explain_diff_spec builtin timeout
    max_candidates max_events json jobs mem_limit journal resume shrink
    no_batch backend_opt trace metrics files =
  Harness.Cli.with_obs ~trace ~metrics @@ fun () ->
  let oracle = oracle_of_name model in
  let backend = Harness.Cli.backend ~backend:backend_opt ~no_batch in
  let mname = model_display_name model in
  let limits =
    Exec.Budget.limits ?timeout ?max_events ?max_candidates ()
  in
  let items =
    (match builtin with
    | Some name ->
        let e = Harness.Battery.find name in
        (* check the battery entry's source directly; its recorded LK
           verdict becomes the expectation when running the LK model *)
        [
          {
            Harness.Runner.id = e.Harness.Battery.name;
            source = `Text e.Harness.Battery.source;
            expected =
              (if mname = "LK" then Some e.Harness.Battery.lk else None);
          };
        ]
    | None -> [])
    @ List.map
        (fun path ->
          { Harness.Runner.id = path; source = `File path; expected = None })
        files
  in
  if items = [] then begin
    Fmt.pr
      "no tests given; try: herd_lk -b MP+wmb+rmb  (built-in battery test)@.";
    0
  end
  else
    match explain_diff_spec with
    | Some spec ->
        Harness.Runner.exit_code (explain_diff ~limits ~backend spec items)
    | None ->
  begin
    let pool_config =
      {
        Harness.Pool.default with
        Harness.Pool.jobs = max 1 jobs;
        limits;
        mem_limit_mb = mem_limit;
      }
    in
    (* isolation is opt-in: any pool-only feature selects the pool *)
    let use_pool =
      jobs > 1 || mem_limit <> None || journal <> None || resume <> None
    in
    let explainer = if explain then explainer_of_name model else None in
    let report =
      if use_pool then
        Harness.Pool.run ~config:pool_config ?journal ?resume ?explainer
          ~backend ~oracle items
      else
        Harness.Runner.run ~limits ?explainer ~backend ~oracle items
    in
    if shrink then
      shrink_failures ~limits ~backend ~oracle ~pool_config report items;
    if json then print_string (Harness.Runner.to_json report ^ "\n")
    else begin
      let sources =
        List.map
          (fun (i : Harness.Runner.item) ->
            match i.source with
            | `Text s -> s
            | `File p -> (try Harness.Runner.read_file p with _ -> "")
            | `Ast t -> Litmus.to_string t)
          items
      in
      List.iter2
        (fun (e : Harness.Runner.entry) source ->
          print_entry mname outcomes e;
          (if verbose && mname = "LK" then
             match e.Harness.Runner.result with
             | Some _ -> (
                 try Fmt.pr "%a@." Lkmm.Explain.pp_test_verdict (Litmus.parse source)
                 with _ -> ())
             | None -> ());
          match dot with Some p -> write_dot p e source | None -> ())
        report.Harness.Runner.entries sources;
      if List.length items > 1 then Fmt.pr "%a@." Harness.Runner.pp report
    end;
    Harness.Runner.exit_code report
  end

let model_arg =
  Arg.(
    value
    & opt string "lk"
    & info [ "model"; "m" ] ~docv:"MODEL"
        ~doc:
          "Consistency model: lk (native), lk-cat (cat-interpreted), sc, \
           tso, c11, c11-psc, or a .cat file.")

let verbose_arg =
  Arg.(value & flag & info [ "v" ] ~doc:"Explain forbidden tests (LK only).")

let outcomes_arg =
  Arg.(value & flag & info [ "outcomes" ] ~doc:"Print observable outcomes.")

let builtin_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "b"; "battery" ] ~docv:"NAME"
        ~doc:"Run a built-in battery test by name (e.g. MP+wmb+rmb).")

let dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"FILE"
        ~doc:
          "Write a Graphviz rendering of the witness execution (with \
           --explain, of the counterexample, the violating cycle \
           highlighted).")

let explain_arg =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "Verdict forensics: for every Forbid verdict, print each failed \
           check with a minimal witnessing cycle, every edge decomposed to \
           primitive rf/co/fr/po/dependency edges.  Explanations are \
           re-validated against the model's own relations before printing; \
           with --json they ride along in the report.")

let explain_diff_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "explain-diff" ] ~docv:"MODEL,MODEL"
        ~doc:
          "Run each test under two models with forensics on and name the \
           checks failing under one but not the other (e.g. lkmm,c11).")

let shrink_arg =
  Arg.(
    value & flag
    & info [ "shrink" ]
        ~doc:
          "Minimise every failing or crashing test to a reproducer written \
           next to the input as <name>.min.litmus (delta debugging against \
           the same classified outcome).")

let files_arg =
  Arg.(value & pos_all file [] & info [] ~docv:"TEST.litmus")

let cmd =
  let module C = Harness.Cli in
  Cmd.v
    (Cmd.info "herd_lk" ~doc:"Run litmus tests against memory models"
       ~exits:C.exit_infos
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs each test through a fault-isolated batch runner: parse \
              errors, lint errors, budget exhaustion and internal failures \
              are reported as classified entries and the batch always \
              completes.  The highest-severity entry decides the exit code \
              (error > fail > budget).";
         ])
    Term.(
      const main $ model_arg $ verbose_arg $ outcomes_arg $ dot_arg
      $ explain_arg $ explain_diff_arg
      $ builtin_arg $ C.timeout_arg $ C.max_candidates_arg $ C.max_events_arg
      $ C.json_arg $ C.jobs_arg $ C.mem_limit_arg $ C.journal_arg
      $ C.resume_arg $ shrink_arg $ C.no_batch_arg $ C.backend_arg
      $ C.trace_arg $ C.metrics_arg $ files_arg)

let () = Harness.Cli.eval ~name:"herd_lk" cmd
