(* herd_lk: run litmus tests against a consistency model — the repository's
   herd7 equivalent.

     herd_lk test.litmus                 # LK model (native)
     herd_lk -model c11 test.litmus      # a shipped model
     herd_lk -model my.cat test.litmus   # any cat file
     herd_lk -v test.litmus              # verdict + witness explanation
     herd_lk -outcomes test.litmus       # all observable outcomes *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let model_of_name name : (module Exec.Check.MODEL) =
  match String.lowercase_ascii name with
  | "lk" | "lkmm" | "linux" -> (module Lkmm)
  | "lk-cat" ->
      Cat.to_check_model ~name:"LK(cat)" (Cat.parse Cat.Stdmodels.lk)
  | "sc" -> (module Models.Sc)
  | "tso" | "x86" -> (module Models.Tso)
  | "c11" -> (module Models.C11)
  | "c11-psc" | "rc11" -> (module Models.C11.Strengthened)
  | _ when Filename.check_suffix name ".cat" ->
      Cat.to_check_model ~name (Cat.load_file name)
  | other -> failwith ("unknown model: " ^ other)

let run_one model verbose outcomes dot path =
  let test = Litmus.parse (read_file path) in
  List.iter
    (fun i -> Fmt.pr "lint: %a@." Litmus.Lint.pp_issue i)
    (Litmus.Lint.check_all test);
  let module M = (val model : Exec.Check.MODEL) in
  let r = Exec.Check.run model test in
  Fmt.pr "Test %s: %a under %s (%d candidate executions, %d consistent)@."
    test.Litmus.Ast.name Exec.Check.pp_verdict r.Exec.Check.verdict M.name
    r.Exec.Check.n_candidates r.Exec.Check.n_consistent;
  if outcomes then
    List.iter
      (fun (o, matches) ->
        Fmt.pr "  %a %s@." Exec.pp_outcome o
          (if matches then "<- condition" else ""))
      r.Exec.Check.outcomes;
  if verbose && M.name = "LK" then
    Fmt.pr "%a@." Lkmm.Explain.pp_test_verdict test;
  match dot with
  | Some path ->
      (* render the witness (or the first candidate) as a Graphviz file *)
      let x =
        match r.Exec.Check.witness with
        | Some x -> Some x
        | None -> (match Exec.of_test test with x :: _ -> Some x | [] -> None)
      in
      (match x with
      | Some x ->
          Exec.Dot.to_file path x;
          Fmt.pr "wrote %s@." path
      | None -> ())
  | None -> ()

let main model verbose outcomes dot builtin files =
  let model = model_of_name model in
  (match builtin with
  | Some name ->
      let e = Harness.Battery.find name in
      let tmp = Filename.temp_file "battery" ".litmus" in
      let oc = open_out tmp in
      output_string oc e.Harness.Battery.source;
      close_out oc;
      run_one model verbose outcomes dot tmp
  | None -> ());
  List.iter (run_one model verbose outcomes dot) files;
  if files = [] && builtin = None then
    Fmt.pr
      "no tests given; try: herd_lk -b MP+wmb+rmb  (built-in battery test)@."

let model_arg =
  Arg.(
    value
    & opt string "lk"
    & info [ "model"; "m" ] ~docv:"MODEL"
        ~doc:
          "Consistency model: lk (native), lk-cat (cat-interpreted), sc, \
           tso, c11, c11-psc, or a .cat file.")

let verbose_arg =
  Arg.(value & flag & info [ "v" ] ~doc:"Explain forbidden tests (LK only).")

let outcomes_arg =
  Arg.(value & flag & info [ "outcomes" ] ~doc:"Print observable outcomes.")

let builtin_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "b"; "battery" ] ~docv:"NAME"
        ~doc:"Run a built-in battery test by name (e.g. MP+wmb+rmb).")

let dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"FILE"
        ~doc:"Write a Graphviz rendering of the witness execution.")

let files_arg =
  Arg.(value & pos_all file [] & info [] ~docv:"TEST.litmus")

let cmd =
  Cmd.v
    (Cmd.info "herd_lk" ~doc:"Run litmus tests against memory models")
    Term.(
      const main $ model_arg $ verbose_arg $ outcomes_arg $ dot_arg
      $ builtin_arg $ files_arg)

(* user errors become one-line messages, not uncaught exceptions *)
let () =
  match Cmd.eval_value ~catch:false cmd with
  | Ok _ -> exit 0
  | Error _ -> exit 124
  | exception Litmus.Parser.Error (msg, line) ->
      Fmt.epr "herd_lk: parse error, line %d: %s@." line msg;
      exit 2
  | exception Litmus.Lexer.Error (msg, line) ->
      Fmt.epr "herd_lk: lexical error, line %d: %s@." line msg;
      exit 2
  | exception Cat.Parser.Error (msg, line) ->
      Fmt.epr "herd_lk: cat parse error, line %d: %s@." line msg;
      exit 2
  | exception Cat.Lexer.Error (msg, line) ->
      Fmt.epr "herd_lk: cat lexical error, line %d: %s@." line msg;
      exit 2
  | exception Cat.Interp.Type_error msg ->
      Fmt.epr "herd_lk: cat evaluation error: %s@." msg;
      exit 2
  | exception Failure msg ->
      Fmt.epr "herd_lk: %s@." msg;
      exit 2
  | exception Not_found ->
      Fmt.epr "herd_lk: unknown built-in test (see lib/harness/battery.ml for names)@.";
      exit 2
