(* lkserve: checking-as-a-service — a daemon answering litmus-check
   requests over a Unix socket, on a domain-based worker pool with a
   journal-backed verdict cache.

     lkserve --socket /tmp/lk.sock --workers 4        # run the daemon
     lkserve --socket /tmp/lk.sock --cache-journal cache.jsonl
     lkserve --socket /tmp/lk.sock --client test.litmus   # one check
     lkserve --socket /tmp/lk.sock --stats            # daemon stats
     lkserve --socket /tmp/lk.sock --shutdown         # graceful drain

   The wire protocol is one JSON object per line in each direction
   (Harness.Proto); --client is a convenience for shells and scripts,
   any language that can write JSON to a Unix socket is a client. *)

open Cmdliner

let socket_arg =
  let doc = "Unix-domain socket path the daemon listens on." in
  Arg.(value & opt string "lkserve.sock" & info [ "socket" ] ~docv:"PATH" ~doc)

let workers_arg =
  let doc = "Worker domains checking requests concurrently." in
  Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc)

let queue_arg =
  let doc =
    "Bound on queued requests; arrivals beyond it are rejected with class \
     $(i,overloaded)."
  in
  Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc)

let default_timeout_arg =
  let doc =
    "Default per-request deadline, seconds (clients override with \
     $(i,timeout_ms))."
  in
  Arg.(value & opt float 10. & info [ "default-timeout" ] ~docv:"SECONDS" ~doc)

let wedge_grace_arg =
  let doc =
    "Seconds past its request's deadline before a busy worker is declared \
     wedged and abandoned."
  in
  Arg.(value & opt float 2.0 & info [ "wedge-grace" ] ~docv:"SECONDS" ~doc)

let cache_journal_arg =
  let doc =
    "Persist the verdict cache as JSONL at $(docv); recovered (torn tail \
     dropped) on restart."
  in
  Arg.(
    value & opt (some string) None & info [ "cache-journal" ] ~docv:"FILE" ~doc)

let fsync_arg =
  let doc = "fsync each cache-journal append (survive power loss)." in
  Arg.(value & flag & info [ "fsync" ] ~doc)

let chaos_ops_arg =
  let doc =
    "Accept the fault-injection ops chaos_kill/chaos_wedge (testing only)."
  in
  Arg.(value & flag & info [ "chaos-ops" ] ~doc)

let max_line_arg =
  let doc = "Reject request lines over $(docv) bytes." in
  Arg.(value & opt int (1 lsl 20) & info [ "max-line" ] ~docv:"BYTES" ~doc)

(* Client mode *)

let client_arg =
  let doc =
    "Act as a client: send each $(docv) (a .litmus file) to the daemon and \
     print the verdicts."
  in
  Arg.(value & pos_all file [] & info [] ~docv:"TEST" ~doc)

let client_flag =
  let doc = "Client mode: check the positional files against the daemon." in
  Arg.(value & flag & info [ "client" ] ~doc)

let model_arg =
  let doc = "Model to check against (client mode)." in
  Arg.(value & opt string "lk" & info [ "model" ] ~docv:"NAME" ~doc)

let stats_flag =
  let doc = "Query the daemon's stats line and exit." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let metrics_dump_flag =
  let doc =
    "Query the daemon's live telemetry snapshot (request counters, queue \
     and worker gauges, p50/p95/p99 latency and queue-wait percentiles) \
     and print it as one JSON object ($(i,lkmetrics-1), see \
     ci/metrics.schema.json)."
  in
  Arg.(value & flag & info [ "metrics-dump" ] ~doc)

let prom_flag =
  let doc =
    "With $(b,--metrics-dump): render the snapshot as Prometheus-style \
     text exposition instead of JSON."
  in
  Arg.(value & flag & info [ "prom" ] ~doc)

let flight_dir_arg =
  let doc =
    "Arm the crash flight recorder: periodic and per-job checkpoints of \
     the observability ring land in $(docv)/flight-<pid>.jsonl, so a kill \
     -9, wedge or quarantine leaves a post-mortem readable with \
     $(b,obs_report --postmortem)."
  in
  Arg.(
    value & opt (some string) None & info [ "flight-dir" ] ~docv:"DIR" ~doc)

let flight_interval_arg =
  let doc = "Seconds between opportunistic flight checkpoints." in
  Arg.(
    value & opt float 0.5 & info [ "flight-interval" ] ~docv:"SECONDS" ~doc)

let shutdown_flag =
  let doc = "Ask the daemon to drain and exit." in
  Arg.(value & flag & info [ "shutdown" ] ~doc)

let timeout_ms_arg =
  let doc = "Per-request deadline, milliseconds (client mode)." in
  Arg.(
    value & opt (some int) None & info [ "timeout-ms" ] ~docv:"MS" ~doc)

let print_response label = function
  | Error e ->
      Printf.eprintf "lkserve: %s: %s\n%!" label e;
      2
  | Ok (r : Harness.Proto.response) ->
      let extra =
        match (r.Harness.Proto.rsp_cache_hit, r.Harness.Proto.rsp_verdict) with
        | Some true, Some v -> Printf.sprintf " %s (cached)" v
        | _, Some v -> Printf.sprintf " %s" v
        | _ -> (
            match r.Harness.Proto.rsp_msg with
            | Some m -> " " ^ m
            | None -> "")
      in
      Printf.printf "%-20s %s%s\n%!" label
        (Harness.Proto.cls_name r.Harness.Proto.rsp_cls)
        extra;
      (match r.Harness.Proto.rsp_cls with
      | Harness.Proto.Ok_ -> 0
      | Harness.Proto.Fail -> 1
      | Harness.Proto.Unknown -> 3
      | _ -> 2)

(* Prometheus-style text exposition of one lkmetrics-1 snapshot. *)
let print_prom j =
  let module J = Harness.Journal.Json in
  let num k obj =
    match Option.bind (J.mem k obj) J.num with Some v -> v | None -> 0.
  in
  let g name v = Printf.printf "%s %g\n" name v in
  g "lkserve_uptime_seconds" (num "uptime_s" j);
  g "lkserve_requests_total" (num "requests" j);
  g "lkserve_queue_depth" (num "queue_depth" j);
  g "lkserve_retries_gated" (num "gated" j);
  g "lkserve_workers_live" (num "workers_live" j);
  g "lkserve_workers_busy" (num "workers_busy" j);
  g "lkserve_replacements_total" (num "replacements" j);
  g "lkserve_quarantined_keys" (num "quarantined_keys" j);
  (match J.mem "cache" j with
  | Some c ->
      g "lkserve_cache_size" (num "size" c);
      g "lkserve_cache_hits_total" (num "hits" c);
      g "lkserve_cache_misses_total" (num "misses" c)
  | None -> ());
  (match J.mem "served" j with
  | Some (J.Obj kvs) ->
      List.iter
        (fun (k, v) ->
          match J.num v with
          | Some v ->
              Printf.printf "lkserve_served_total{class=\"%s\"} %g\n" k v
          | None -> ())
        kvs
  | _ -> ());
  let hist key name =
    match J.mem key j with
    | Some h ->
        Printf.printf "%s_count %g\n" name (num "count" h);
        List.iter
          (fun (q, k) ->
            Printf.printf "%s{quantile=\"%s\"} %g\n" name q (num k h))
          [ ("0.5", "p50"); ("0.95", "p95"); ("0.99", "p99") ];
        Printf.printf "%s_max %g\n" name (num "max" h)
    | None -> ()
  in
  hist "latency_us" "lkserve_request_latency_us";
  hist "queue_wait_us" "lkserve_queue_wait_us"

let client_main socket model timeout_ms stats metrics_dump prom shutdown files
    =
  match Harness.Serve.Client.connect socket with
  | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "lkserve: cannot reach daemon at %s: %s\n%!" socket
        (Unix.error_message e);
      2
  | c ->
      let code =
        if metrics_dump then (
          match Harness.Serve.Client.metrics c with
          | Ok r -> (
              match
                Harness.Journal.Json.mem "metrics"
                  r.Harness.Proto.rsp_json
              with
              | Some m ->
                  if prom then print_prom m
                  else print_endline (Harness.Journal.Json.to_string m);
                  0
              | None ->
                  Printf.eprintf "lkserve: metrics: missing payload\n%!";
                  2)
          | Error e ->
              Printf.eprintf "lkserve: metrics: %s\n%!" e;
              2)
        else if stats then (
          match Harness.Serve.Client.stats c with
          | Ok r ->
              (match r.Harness.Proto.rsp_json with
              | Harness.Journal.Json.Obj members ->
                  List.iter
                    (fun (k, v) ->
                      match v with
                      | Harness.Journal.Json.Str s ->
                          Printf.printf "%-18s %s\n" k s
                      | Harness.Journal.Json.Num n ->
                          Printf.printf "%-18s %g\n" k n
                      | _ -> ())
                    members
              | _ -> ());
              0
          | Error e ->
              Printf.eprintf "lkserve: stats: %s\n%!" e;
              2)
        else if shutdown then
          print_response "shutdown" (Harness.Serve.Client.shutdown c)
        else
          List.fold_left
            (fun acc f ->
              let source = Harness.Runner.read_file f in
              let rc =
                print_response (Filename.basename f)
                  (Harness.Serve.Client.check c ~model ?timeout_ms source)
              in
              max acc rc)
            0 files
      in
      Harness.Serve.Client.close c;
      code

let main socket workers queue default_timeout wedge_grace cache_journal fsync
    chaos_ops max_line timeout no_batch backend_opt trace metrics flight_dir
    flight_interval client client_files model timeout_ms stats metrics_dump
    prom shutdown =
  if client || stats || metrics_dump || shutdown then
    client_main socket model timeout_ms stats metrics_dump prom shutdown
      client_files
  else
    let limits =
      {
        Exec.Budget.default with
        Exec.Budget.timeout =
          (match timeout with Some t -> Some t | None -> Some default_timeout);
      }
    in
    (* The daemon honours the shared --trace/--metrics flags like every
       other CLI: collector on iff an output was asked for (or a flight
       dir is armed), exports written on the way out — even after a
       failed run. *)
    Harness.Cli.with_obs ~trace ~metrics (fun () ->
        Harness.Serve.run
          ~config:
            {
              Harness.Serve.socket;
              workers;
              queue_bound = queue;
              limits;
              default_timeout;
              max_line;
              wedge_grace;
              max_replacements = 32;
              cache_journal;
              fsync;
              chaos_ops;
              retries = 1;
              backoff = 0.05;
              backend = Harness.Cli.backend ~backend:backend_opt ~no_batch;
              flight_dir;
              flight_interval;
            }
          ())

let cmd =
  let doc = "litmus checking as a service (daemon and client)" in
  let info = Cmd.info "lkserve" ~doc ~exits:Harness.Cli.exit_infos in
  Cmd.v info
    Term.(
      const main $ socket_arg $ workers_arg $ queue_arg $ default_timeout_arg
      $ wedge_grace_arg $ cache_journal_arg $ fsync_arg $ chaos_ops_arg
      $ max_line_arg $ Harness.Cli.timeout_arg $ Harness.Cli.no_batch_arg
      $ Harness.Cli.backend_arg $ Harness.Cli.trace_arg
      $ Harness.Cli.metrics_arg $ flight_dir_arg $ flight_interval_arg
      $ client_flag $ client_arg $ model_arg $ timeout_ms_arg $ stats_flag
      $ metrics_dump_flag $ prom_flag $ shutdown_flag)

let () = Harness.Cli.eval ~name:"lkserve" cmd
