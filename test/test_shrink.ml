(* Tests for Harness.Shrink: seeded known-bad tests must shrink
   deterministically to a fixed-point reproducer that still trips the
   same oracle — a verdict mismatch, a lint error, and a crashing
   worker (injected, exercising the pool-isolated oracle path). *)

module R = Harness.Runner
module S = Harness.Shrink
module P = Harness.Pool
module B = Exec.Budget
module Ast = Litmus.Ast

let limits = B.limits ~timeout:5.0 ~max_candidates:50_000 ()
let oracle = Lkmm.oracle

let parse name = Litmus.parse (Harness.Battery.find name).Harness.Battery.source

(* ---- structural helpers ------------------------------------------- *)

let test_candidates_shrink () =
  let t = parse "LB+ctrl+mb" in
  let cs = S.candidates t in
  Alcotest.(check bool) "proposals exist" true (cs <> []);
  List.iter
    (fun t' ->
      Alcotest.(check bool) "every proposal strictly smaller" true
        (S.size t' < S.size t))
    cs

let test_drop_thread_remaps_condition () =
  let t = parse "LB" in
  (* LB: P0 observes 0:r1, P1 observes 1:r2 *)
  let t' = S.drop_thread t 0 in
  Alcotest.(check int) "one thread left" 1 (Array.length t'.Ast.threads);
  let rec atoms = function
    | Ast.Atom a -> [ a ]
    | Ast.Not c -> atoms c
    | Ast.And (a, b) | Ast.Or (a, b) -> atoms a @ atoms b
    | Ast.Ctrue -> []
  in
  (* the observer of dropped P0 is gone; P1's observer now points at
     thread 0 *)
  match atoms t'.Ast.cond with
  | [ Ast.Reg_eq (0, "r2", Ast.VInt 1) ] -> ()
  | _ -> Alcotest.failf "bad remap: %s" (Litmus.to_string t')

(* ---- verdict-mismatch oracle -------------------------------------- *)

(* A seeded FAIL: LB+ctrl+mb is Forbid under LK; expecting Allow makes
   every check a deterministic mismatch. *)
let mismatch_check t =
  R.run_item ~limits ~oracle
    { R.id = t.Ast.name; source = `Ast t; expected = Some Exec.Check.Allow }

let test_mismatch_shrinks_to_fixed_point () =
  let t = parse "LB+ctrl+mb" in
  let base = mismatch_check t in
  Alcotest.(check string) "seed trips" "fail:Allow->Forbid"
    (S.fingerprint base);
  let o = S.shrink_entry ~check:mismatch_check base t in
  Alcotest.(check bool) "strictly smaller" true
    (o.S.final_size < o.S.initial_size);
  Alcotest.(check string) "reproducer still trips" "fail:Allow->Forbid"
    (S.fingerprint (mismatch_check o.S.reduced));
  (* fixed point: shrinking the reproducer again does nothing *)
  let o2 = S.shrink_entry ~check:mismatch_check base o.S.reduced in
  Alcotest.(check int) "no further reduction" 0 o2.S.steps;
  (* deterministic: an independent run lands on the same reproducer *)
  let o3 = S.shrink_entry ~check:mismatch_check base t in
  Alcotest.(check string) "deterministic" (Litmus.to_string o.S.reduced)
    (Litmus.to_string o3.S.reduced);
  (* the reproducer round-trips through concrete syntax and still trips *)
  let reparsed = Litmus.parse (Litmus.to_string o.S.reduced) in
  Alcotest.(check string) "round-tripped reproducer trips"
    "fail:Allow->Forbid"
    (S.fingerprint (mismatch_check reparsed))

(* ---- lint-error oracle -------------------------------------------- *)

let lint_seed =
  {|C lint-seed
{ x=0; y=0; }
P0(int *x, int *y) {
  WRITE_ONCE(*y, 1);
  rcu_read_lock();
  WRITE_ONCE(*x, 1);
  int r9 = READ_ONCE(*y);
}
P1(int *x, int *y) {
  WRITE_ONCE(*y, 2);
  int r1 = READ_ONCE(*x);
}
exists (1:r1=1 /\ y=2)|}

let lint_check t =
  R.run_item ~limits ~oracle
    { R.id = t.Ast.name; source = `Ast t; expected = None }

let test_lint_error_shrinks () =
  let t = Litmus.parse lint_seed in
  let base = lint_check t in
  Alcotest.(check string) "seed trips lint" "error:lint"
    (S.fingerprint base);
  let o = S.shrink_entry ~check:lint_check base t in
  Alcotest.(check string) "reproducer still a lint error" "error:lint"
    (S.fingerprint (lint_check o.S.reduced));
  Alcotest.(check bool) "strictly smaller" true
    (o.S.final_size < o.S.initial_size);
  (* the unbalanced lock is the failure; it must survive the shrink *)
  let has_lock =
    Array.exists
      (List.exists (fun i -> i = Ast.Fence Ast.F_rcu_lock))
      o.S.reduced.Ast.threads
  in
  Alcotest.(check bool) "rcu_read_lock survives" true has_lock;
  let o2 = S.shrink_entry ~check:lint_check base o.S.reduced in
  Alcotest.(check int) "fixed point" 0 o2.S.steps

(* ---- crash oracle (pool-isolated) --------------------------------- *)

(* A "crashing mutant" in the fuzz_smoke spirit: checking any test that
   touches the global [boom] kills the worker with SIGSEGV.  The
   shrinker must preserve the crash, so the boom access survives while
   the unrelated threads, instructions and condition clauses go. *)
let crash_seed =
  {|C crash-seed
{ x=0; y=0; boom=0; }
P0(int *x, int *boom) {
  WRITE_ONCE(*x, 1);
  WRITE_ONCE(*boom, 1);
  int r0 = READ_ONCE(*x);
}
P1(int *x, int *y) {
  WRITE_ONCE(*x, 2);
  smp_mb();
  WRITE_ONCE(*y, 1);
}
P2(int *y) {
  int r1 = READ_ONCE(*y);
}
exists ((0:r0=1 /\ 2:r1=1) \/ x=2)|}

let crashy_worker (it : R.item) =
  let t =
    match it.R.source with
    | `Ast t -> t
    | `Text s -> Litmus.parse s
    | `File p -> Litmus.parse (R.read_file p)
  in
  if List.mem "boom" (Ast.globals t) then
    Unix.kill (Unix.getpid ()) Sys.sigsegv;
  R.run_item ~limits ~oracle it

let crash_check t =
  S.isolated_check
    ~config:{ P.default with P.limits = limits; backoff = 0.01 }
    ~worker:crashy_worker ~oracle t

let test_crash_shrinks_in_isolation () =
  let t = Litmus.parse crash_seed in
  let base = crash_check t in
  Alcotest.(check string) "seed crashes the worker" "crash:SIGSEGV"
    (S.fingerprint base);
  let o = S.shrink_entry ~check:crash_check base t in
  Alcotest.(check string) "reproducer still crashes" "crash:SIGSEGV"
    (S.fingerprint (crash_check o.S.reduced));
  Alcotest.(check bool) "strictly smaller" true
    (o.S.final_size < o.S.initial_size);
  Alcotest.(check bool) "the boom access survives" true
    (List.mem "boom" (Ast.globals o.S.reduced));
  (* everything unrelated to the crash went: the crash does not need a
     second thread *)
  Alcotest.(check int) "single thread left" 1
    (Array.length o.S.reduced.Ast.threads);
  let o3 = S.shrink_entry ~check:crash_check base t in
  Alcotest.(check string) "deterministic" (Litmus.to_string o.S.reduced)
    (Litmus.to_string o3.S.reduced)

(* ---- reproducer emission ------------------------------------------ *)

let test_write_reproducer () =
  let t = parse "SB" in
  let path = Filename.temp_file "shrink_repro" ".litmus" in
  S.write_reproducer path t;
  let back = Litmus.parse (R.read_file path) in
  Sys.remove path;
  Alcotest.(check string) "round trip through the file" t.Ast.name
    back.Ast.name

let () =
  Alcotest.run "shrink"
    [
      ( "structure",
        [
          Alcotest.test_case "candidates shrink" `Quick test_candidates_shrink;
          Alcotest.test_case "thread drop remaps cond" `Quick
            test_drop_thread_remaps_condition;
        ] );
      ( "oracles",
        [
          Alcotest.test_case "verdict mismatch" `Slow
            test_mismatch_shrinks_to_fixed_point;
          Alcotest.test_case "lint error" `Quick test_lint_error_shrinks;
          Alcotest.test_case "crash (isolated)" `Slow
            test_crash_shrinks_in_isolation;
          Alcotest.test_case "write reproducer" `Quick test_write_reproducer;
        ] );
    ]
