(* Tests for the reference models: SC, x86-TSO, C11 (original and
   strengthened) — the paper's comparison column and the strength ordering
   between them. *)

let parse = Litmus.parse
let battery name = Harness.Battery.test_of (Harness.Battery.find name)
let verdict m t = (Exec.Check.run m t).Exec.Check.verdict
let allow = Exec.Check.Allow
let forbid = Exec.Check.Forbid

(* ------------------------------------------------------------------ *)
(* SC                                                                  *)
(* ------------------------------------------------------------------ *)

let test_sc_forbids_all_weak () =
  List.iter
    (fun name ->
      Alcotest.(check bool) ("SC forbids " ^ name) true
        (verdict (module Models.Sc) (battery name) = forbid))
    [ "SB"; "MP"; "LB"; "WRC"; "RWC"; "PeterZ-No-Synchro"; "2+2W"; "CoRR" ]

let test_sc_allows_racy_nonweak () =
  (* both final values are SC-reachable in a race *)
  let t =
    parse
      "C r\n{ }\nP0(int *x) { WRITE_ONCE(x, 1); }\nP1(int *x) { WRITE_ONCE(x, 2); }\nexists (x=1)"
  in
  Alcotest.(check bool) "x=1 reachable" true
    (verdict (module Models.Sc) t = allow)

(* ------------------------------------------------------------------ *)
(* TSO                                                                 *)
(* ------------------------------------------------------------------ *)

let test_tso_store_buffering () =
  Alcotest.(check bool) "SB allowed" true
    (verdict (module Models.Tso) (battery "SB") = allow);
  Alcotest.(check bool) "SB+mbs forbidden" true
    (verdict (module Models.Tso) (battery "SB+mbs") = forbid)

let test_tso_keeps_other_orders () =
  List.iter
    (fun name ->
      Alcotest.(check bool) ("TSO forbids " ^ name) true
        (verdict (module Models.Tso) (battery name) = forbid))
    [ "MP"; "LB"; "WRC"; "CoRR"; "2+2W" ]

let test_tso_peterz_no_synchro () =
  (* the x86 column of Table 5: observable via store buffering alone *)
  Alcotest.(check bool) "PeterZ-No-Synchro allowed on TSO" true
    (verdict (module Models.Tso) (battery "PeterZ-No-Synchro") = allow)

let test_tso_rwc () =
  Alcotest.(check bool) "RWC allowed on TSO" true
    (verdict (module Models.Tso) (battery "RWC") = allow)

(* ------------------------------------------------------------------ *)
(* C11: the Table 5 column                                             *)
(* ------------------------------------------------------------------ *)

let test_c11_table5_column () =
  List.iter
    (fun (e : Harness.Battery.entry) ->
      match e.c11 with
      | None -> ()
      | Some expected ->
          Alcotest.(check bool)
            ("C11 verdict for " ^ e.name)
            true
            (verdict (module Models.C11) (Harness.Battery.test_of e)
            = expected))
    Harness.Battery.all

let test_c11_not_applicable_to_rcu () =
  Alcotest.(check bool) "RCU has no C11 counterpart" false
    (Models.C11.applicable (battery "RCU-MP"));
  Alcotest.(check bool) "MP maps fine" true
    (Models.C11.applicable (battery "MP"))

let test_c11_ignores_dependencies () =
  (* LB+datas: forbidden by LK (hardware never speculates into stores),
     allowed by C11 relaxed atomics — the out-of-thin-air weakness *)
  Alcotest.(check bool) "LB+datas allowed by C11" true
    (verdict (module Models.C11) (battery "LB+datas") = allow);
  Alcotest.(check bool) "LB+datas forbidden by LK" true
    (verdict (module Lkmm) (battery "LB+datas") = forbid)

let test_c11_release_acquire () =
  Alcotest.(check bool) "MP+po-rel+acq forbidden" true
    (verdict (module Models.C11) (battery "MP+po-rel+acq") = forbid)

let test_c11_fence_sw () =
  (* MP via fence-to-fence synchronizes-with *)
  Alcotest.(check bool) "MP+wmb+rmb forbidden (fence sw)" true
    (verdict (module Models.C11) (battery "MP+wmb+rmb") = forbid)

let test_strengthened_fences () =
  (* the RC11-style psc flips exactly the SC-fence weaknesses *)
  Alcotest.(check bool) "RWC+mbs: orig allows" true
    (verdict (module Models.C11) (battery "RWC+mbs") = allow);
  Alcotest.(check bool) "RWC+mbs: psc forbids" true
    (verdict (module Models.C11.Strengthened) (battery "RWC+mbs") = forbid);
  Alcotest.(check bool) "PeterZ: orig allows" true
    (verdict (module Models.C11) (battery "PeterZ") = allow);
  Alcotest.(check bool) "PeterZ: psc forbids" true
    (verdict (module Models.C11.Strengthened) (battery "PeterZ") = forbid);
  (* but psc still does not recover dependencies *)
  Alcotest.(check bool) "LB+ctrl+mb: psc still allows" true
    (verdict (module Models.C11.Strengthened) (battery "LB+ctrl+mb") = allow)

(* ------------------------------------------------------------------ *)
(* Strength ordering as a sweep property                               *)
(* ------------------------------------------------------------------ *)

let test_strength_ordering () =
  let rng = Random.State.make [| 77 |] in
  let tests =
    List.map Harness.Battery.test_of Harness.Battery.all
    @ Diygen.sample ~vocabulary:Diygen.Edge.core_vocabulary ~rng ~count:40 4
  in
  Alcotest.(check (list string)) "SC >= TSO >= LK" []
    (Harness.Sweep.strength_issues tests)

let test_psc_stronger_than_orig () =
  (* every execution consistent under psc fences is consistent under the
     original semantics (strengthening only removes behaviours) *)
  let rng = Random.State.make [| 78 |] in
  let tests =
    Diygen.sample ~vocabulary:Diygen.Edge.core_vocabulary ~rng ~count:30 4
  in
  List.iter
    (fun t ->
      if Models.C11.applicable t then
        List.iter
          (fun x ->
            if Models.C11.Strengthened.consistent x then
              Alcotest.(check bool)
                (t.Litmus.Ast.name ^ ": psc-consistent implies consistent")
                true (Models.C11.consistent x))
          (Exec.of_test t))
    tests

let () =
  Alcotest.run "models"
    [
      ( "sc",
        [
          Alcotest.test_case "forbids weak" `Quick test_sc_forbids_all_weak;
          Alcotest.test_case "allows races" `Quick test_sc_allows_racy_nonweak;
        ] );
      ( "tso",
        [
          Alcotest.test_case "store buffering" `Quick
            test_tso_store_buffering;
          Alcotest.test_case "other orders kept" `Quick
            test_tso_keeps_other_orders;
          Alcotest.test_case "PeterZ-No-Synchro" `Quick
            test_tso_peterz_no_synchro;
          Alcotest.test_case "RWC" `Quick test_tso_rwc;
        ] );
      ( "c11",
        [
          Alcotest.test_case "table 5 column" `Quick test_c11_table5_column;
          Alcotest.test_case "RCU not applicable" `Quick
            test_c11_not_applicable_to_rcu;
          Alcotest.test_case "no dependencies" `Quick
            test_c11_ignores_dependencies;
          Alcotest.test_case "release/acquire" `Quick
            test_c11_release_acquire;
          Alcotest.test_case "fence sw" `Quick test_c11_fence_sw;
          Alcotest.test_case "strengthened fences" `Quick
            test_strengthened_fences;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "SC >= TSO >= LK" `Slow test_strength_ordering;
          Alcotest.test_case "psc >= orig" `Slow test_psc_stronger_than_orig;
        ] );
    ]
