(* Golden-verdict corpus: every .litmus file under corpus/ must parse and
   produce exactly the LK and C11 verdicts recorded in the MANIFEST.
   Guards the parser, the enumeration and both models against
   regressions.  Regenerate with tools/gen_corpus after intentional model
   changes.

   The corpus runs through Harness.Runner with the default budgets, so a
   pathological corpus entry (or a model regression that makes one
   explode) surfaces as a Gave_up/Err entry in the report instead of
   hanging the test suite. *)

let corpus_dir =
  (* tests run from _build/default/test *)
  List.find_opt Sys.file_exists [ "../../../corpus"; "corpus" ]

let manifest dir =
  Harness.Runner.read_file (Filename.concat dir "MANIFEST")
  |> String.split_on_char '\n'
  |> List.filter_map (fun line ->
         if line = "" || line.[0] = '#' then None
         else
           match String.split_on_char ' ' line with
           | [ file; lk; c11 ] -> Some (file, lk, c11)
           | _ -> Alcotest.failf "bad manifest line: %s" line)

let verdict_of_manifest file = function
  | "Allow" -> Exec.Check.Allow
  | "Forbid" -> Exec.Check.Forbid
  | other -> Alcotest.failf "%s: bad manifest verdict %S" file other

let check_report label (report : Harness.Runner.report) =
  List.iter
    (fun (e : Harness.Runner.entry) ->
      match e.Harness.Runner.status with
      | Harness.Runner.Pass _ -> ()
      | status ->
          Alcotest.failf "%s: %s: %s" label e.Harness.Runner.item_id
            (Fmt.str "%a" Harness.Runner.pp_status status))
    report.Harness.Runner.entries;
  Alcotest.(check int) (label ^ " exit code") 0 (Harness.Runner.exit_code report)

let test_corpus () =
  match corpus_dir with
  | None -> Alcotest.fail "corpus directory not found"
  | Some dir ->
      let entries = manifest dir in
      Alcotest.(check bool) "corpus is substantial" true
        (List.length entries > 200);
      (* LK batch: every entry, expected verdict from the manifest *)
      let lk_items =
        List.map
          (fun (file, lk, _) ->
            {
              Harness.Runner.id = file;
              source = `File (Filename.concat dir file);
              expected = Some (verdict_of_manifest file lk);
            })
          entries
      in
      check_report "LK" (Harness.Runner.run lk_items);
      (* C11 batch: only the entries the C11 model applies to *)
      let c11_items =
        List.filter_map
          (fun (file, _, c11) ->
            let t =
              Litmus.parse
                (Harness.Runner.read_file (Filename.concat dir file))
            in
            if Models.C11.applicable t then begin
              if c11 = "-" then
                Alcotest.failf "%s: C11-applicable but manifest says -" file;
              Some
                {
                  Harness.Runner.id = file;
                  source = `Ast t;
                  expected = Some (verdict_of_manifest file c11);
                }
            end
            else begin
              if c11 <> "-" then
                Alcotest.failf "%s: not C11-applicable but manifest says %s"
                  file c11;
              None
            end)
          entries
      in
      let model _budget : (module Exec.Check.MODEL) = (module Models.C11) in
      check_report "C11" (Harness.Runner.run ~model c11_items)

let test_corpus_lints_clean () =
  match corpus_dir with
  | None -> ()
  | Some dir ->
      List.iter
        (fun (file, _, _) ->
          let t =
            Litmus.parse (Harness.Runner.read_file (Filename.concat dir file))
          in
          Alcotest.(check int)
            (file ^ " lints clean")
            0
            (List.length (Litmus.Lint.errors (Litmus.Lint.check_all t))))
        (manifest dir)

let () =
  Alcotest.run "corpus"
    [
      ( "golden",
        [
          Alcotest.test_case "verdicts" `Slow test_corpus;
          Alcotest.test_case "lint" `Quick test_corpus_lints_clean;
        ] );
    ]
