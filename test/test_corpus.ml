(* Golden-verdict corpus: every .litmus file under corpus/ must parse and
   produce exactly the LK and C11 verdicts recorded in the MANIFEST.
   Guards the parser, the enumeration and both models against
   regressions.  Regenerate with tools/gen_corpus after intentional model
   changes. *)

let corpus_dir =
  (* tests run from _build/default/test *)
  List.find_opt Sys.file_exists [ "../../../corpus"; "corpus" ]

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let manifest dir =
  read_file (Filename.concat dir "MANIFEST")
  |> String.split_on_char '\n'
  |> List.filter_map (fun line ->
         if line = "" || line.[0] = '#' then None
         else
           match String.split_on_char ' ' line with
           | [ file; lk; c11 ] -> Some (file, lk, c11)
           | _ -> Alcotest.failf "bad manifest line: %s" line)

let test_corpus () =
  match corpus_dir with
  | None -> Alcotest.fail "corpus directory not found"
  | Some dir ->
      let entries = manifest dir in
      Alcotest.(check bool) "corpus is substantial" true
        (List.length entries > 200);
      List.iter
        (fun (file, lk_expected, c11_expected) ->
          let t = Litmus.parse (read_file (Filename.concat dir file)) in
          let lk =
            Exec.Check.verdict_to_string
              (Exec.Check.run (module Lkmm) t).Exec.Check.verdict
          in
          Alcotest.(check string) (file ^ " LK") lk_expected lk;
          let c11 =
            if Models.C11.applicable t then
              Exec.Check.verdict_to_string
                (Exec.Check.run (module Models.C11) t).Exec.Check.verdict
            else "-"
          in
          Alcotest.(check string) (file ^ " C11") c11_expected c11)
        entries

let test_corpus_lints_clean () =
  match corpus_dir with
  | None -> ()
  | Some dir ->
      List.iter
        (fun (file, _, _) ->
          let t = Litmus.parse (read_file (Filename.concat dir file)) in
          Alcotest.(check int)
            (file ^ " lints clean")
            0
            (List.length (Litmus.Lint.errors (Litmus.Lint.check_all t))))
        (manifest dir)

let () =
  Alcotest.run "corpus"
    [
      ( "golden",
        [
          Alcotest.test_case "verdicts" `Slow test_corpus;
          Alcotest.test_case "lint" `Quick test_corpus_lints_clean;
        ] );
    ]
