(* Tests for the LK memory model: the relations of Figure 8 one by one,
   the axioms of Figure 3, the RCU machinery of Figure 12, the fundamental
   law (Section 4.1) with Theorem 1, and every verdict of Table 5 and the
   figures. *)

module E = Exec.Event

let parse = Litmus.parse
let battery name = Harness.Battery.test_of (Harness.Battery.find name)
let verdict test = (Lkmm.check test).Exec.Check.verdict
let allow = Exec.Check.Allow
let forbid = Exec.Check.Forbid

(* A consistent-or-not execution of a test matching its condition (the
   intended weak execution), with its relation context. *)
let weak_ctx test =
  match List.filter Exec.satisfies_cond (Exec.of_test test) with
  | x :: _ -> Lkmm.Relations.make x
  | [] -> Alcotest.fail "no execution matches the condition"

let find_event (c : Lkmm.Relations.ctx) p =
  match Array.to_list c.x.Exec.events |> List.filter p with
  | [ e ] -> e.E.id
  | _ -> Alcotest.fail "event not unique"

(* ------------------------------------------------------------------ *)
(* Figure 8, relation by relation                                      *)
(* ------------------------------------------------------------------ *)

let test_rwdep_ctrl () =
  (* Figure 4: the ctrl edge from the read to the write is in rwdep,
     hence in ppo *)
  let c = weak_ctx (battery "LB+ctrl+mb") in
  let r = find_event c (fun e -> E.is_read e && e.tid = 0) in
  let w = find_event c (fun e -> E.is_write e && e.tid = 0) in
  Alcotest.(check bool) "ctrl in rwdep" true (Rel.mem r w c.rwdep);
  Alcotest.(check bool) "rwdep in ppo" true (Rel.mem r w c.ppo)

let test_wmb_orders_writes_only () =
  let c = weak_ctx (battery "MP+wmb+rmb") in
  let w1 = find_event c (fun e -> E.is_write e && e.loc = "x" && e.tid = 0) in
  let w2 = find_event c (fun e -> E.is_write e && e.loc = "y" && e.tid = 0) in
  Alcotest.(check bool) "wmb pairs the writes" true (Rel.mem w1 w2 c.wmb);
  (* and wmb is a cumul-fence but not A-cumulative *)
  Alcotest.(check bool) "wmb in cumul-fence" true
    (Rel.mem w1 w2 c.cumul_fence)

let test_rmb_orders_reads_only () =
  let c = weak_ctx (battery "MP+wmb+rmb") in
  let r1 = find_event c (fun e -> E.is_read e && e.loc = "y") in
  let r2 = find_event c (fun e -> E.is_read e && e.loc = "x") in
  Alcotest.(check bool) "rmb pairs the reads" true (Rel.mem r1 r2 c.rmb);
  Alcotest.(check bool) "rmb in fence in ppo" true (Rel.mem r1 r2 c.ppo)

let test_mb_orders_everything () =
  let c = weak_ctx (battery "SB+mbs") in
  let w = find_event c (fun e -> E.is_write e && e.tid = 0) in
  let r = find_event c (fun e -> E.is_read e && e.tid = 0) in
  Alcotest.(check bool) "mb pairs write-read" true (Rel.mem w r c.mb);
  Alcotest.(check bool) "mb is strong" true (Rel.mem w r c.strong_fence)

let test_a_cumulativity_of_release () =
  (* Figure 5, Section 3.2.3: (a, c) in cumul-fence via A-cumul(po-rel) *)
  let c = weak_ctx (battery "WRC+po-rel+rmb") in
  let a = find_event c (fun e -> E.is_write e && e.loc = "x" && e.tid = 0) in
  let cw = find_event c (fun e -> E.is_write e && (not (E.is_init e)) && e.loc = "y") in
  Alcotest.(check bool) "A-cumul extends to the external write" true
    (Rel.mem a cw c.cumul_fence)

let test_prop_of_figure2 () =
  (* Section 3.2.3: in Figure 2, d (reading x=0) is overwritten by a, so
     (d, b) in prop *)
  let c = weak_ctx (battery "MP+wmb+rmb") in
  let d = find_event c (fun e -> E.is_read e && e.loc = "x") in
  let b = find_event c (fun e -> E.is_write e && e.loc = "y" && e.tid = 0) in
  Alcotest.(check bool) "(d,b) in prop" true (Rel.mem d b c.prop)

let test_hb_cycle_figure4 () =
  let c = weak_ctx (battery "LB+ctrl+mb") in
  Alcotest.(check bool) "hb is cyclic" false (Rel.is_acyclic c.hb)

let test_pb_cycle_figure6 () =
  let c = weak_ctx (battery "SB+mbs") in
  Alcotest.(check bool) "hb acyclic here" true (Rel.is_acyclic c.hb);
  Alcotest.(check bool) "pb is cyclic" false (Rel.is_acyclic c.pb)

let test_pb_cycle_figure7 () =
  let c = weak_ctx (battery "PeterZ") in
  Alcotest.(check bool) "pb is cyclic" false (Rel.is_acyclic c.pb)

let test_rrdep_prefix_figure9 () =
  (* (c, e) in ppo via rrdep* ; acq-po *)
  let c = weak_ctx (battery "MP+wmb+addr-acq") in
  let rc = find_event c (fun e -> E.is_read e && e.loc = "y") in
  let re = find_event c (fun e -> E.is_read e && e.loc = "x") in
  Alcotest.(check bool) "(c,e) in ppo" true (Rel.mem rc re c.ppo)

let test_strong_rrdep_needs_barrier () =
  (* address dependency alone is not in to-r (Alpha), but with the
     rb-dep fence of rcu_dereference it is *)
  let without = weak_ctx (battery "MP+wmb+addr") in
  let with_ = weak_ctx (battery "MP+wmb+rcu-deref") in
  let deps c = Rel.inter c.Lkmm.Relations.rrdep (Rel.cartesian c.Lkmm.Relations.x.Exec.reads c.Lkmm.Relations.x.Exec.reads) in
  Alcotest.(check bool) "rrdep present in both" true
    ((not (Rel.is_empty (deps without))) && not (Rel.is_empty (deps with_)));
  Alcotest.(check bool) "strong-rrdep only with the barrier" true
    (Rel.is_empty without.Lkmm.Relations.strong_rrdep
    && not (Rel.is_empty with_.Lkmm.Relations.strong_rrdep))

let test_rfi_rel_acq () =
  let t =
    parse
      {|C rra
{ x=0; y=0; }
P0(int *x, int *y) {
  WRITE_ONCE(x, 1);
  smp_store_release(y, 1);
  int r1 = smp_load_acquire(y);
  WRITE_ONCE(z, r1);
}
exists (0:r1=1)|}
  in
  let c = weak_ctx t in
  Alcotest.(check bool) "internal release-to-acquire ordering" false
    (Rel.is_empty c.rfi_rel_acq)

let test_gp_is_strong_fence () =
  let c = weak_ctx (battery "SB+mb+sync") in
  let w = find_event c (fun e -> E.is_write e && e.tid = 1 && e.loc = "y") in
  let r = find_event c (fun e -> E.is_read e && e.tid = 1) in
  Alcotest.(check bool) "gp pairs events around synchronize_rcu" true
    (Rel.mem w r c.gp);
  Alcotest.(check bool) "gp is strong" true (Rel.mem w r c.strong_fence)

(* ------------------------------------------------------------------ *)
(* Axioms (Figure 3)                                                   *)
(* ------------------------------------------------------------------ *)

let test_axiom_violations () =
  let check name expected_axiom =
    let c = weak_ctx (battery name) in
    let violated = Lkmm.Axioms.violations c in
    Alcotest.(check bool)
      (name ^ " violates " ^ Lkmm.Axioms.to_string expected_axiom)
      true
      (List.mem expected_axiom violated)
  in
  check "CoRR" Lkmm.Axioms.Scpv;
  check "CoWW" Lkmm.Axioms.Scpv;
  check "Atomicity" Lkmm.Axioms.At;
  check "LB+ctrl+mb" Lkmm.Axioms.Hb;
  check "MP+wmb+rmb" Lkmm.Axioms.Hb;
  check "WRC+po-rel+rmb" Lkmm.Axioms.Hb;
  check "SB+mbs" Lkmm.Axioms.Pb;
  check "PeterZ" Lkmm.Axioms.Pb;
  check "RWC+mbs" Lkmm.Axioms.Pb;
  check "RCU-MP" Lkmm.Axioms.Rcu;
  check "RCU-deferred-free" Lkmm.Axioms.Rcu

let test_allowed_execution_consistent () =
  (* MP's weak execution is consistent without fences *)
  let c = weak_ctx (battery "MP") in
  Alcotest.(check (list string)) "no violations" []
    (List.map Lkmm.Axioms.to_string (Lkmm.Axioms.violations c))

(* ------------------------------------------------------------------ *)
(* Table 5 + battery verdicts                                          *)
(* ------------------------------------------------------------------ *)

let test_battery_verdicts () =
  List.iter
    (fun (e : Harness.Battery.entry) ->
      Alcotest.(check bool)
        (e.name ^ " verdict matches expectation")
        true
        (verdict (Harness.Battery.test_of e) = e.lk))
    Harness.Battery.all

(* ------------------------------------------------------------------ *)
(* RCU: crit, nesting, law, Theorem 1                                  *)
(* ------------------------------------------------------------------ *)

let test_crit_matching () =
  let t =
    parse
      {|C nest
{ x=0; }
P0(int *x) {
  rcu_read_lock();
  rcu_read_lock();
  int r1 = READ_ONCE(x);
  rcu_read_unlock();
  rcu_read_unlock();
}
exists (0:r1=0)|}
  in
  let x = List.hd (Exec.of_test t) in
  Alcotest.(check int) "one outermost critical section" 1
    (Rel.cardinal x.Exec.crit);
  Rel.iter
    (fun l u ->
      Alcotest.(check bool) "outermost lock to outermost unlock" true
        (x.Exec.events.(l).E.annot = E.Rcu_lock
        && x.Exec.events.(u).E.annot = E.Rcu_unlock
        && (* the outermost unlock is the po-last one *)
        not (Rel.exists (fun a _ -> a = u) x.Exec.po)))
    x.Exec.crit

let test_unbalanced_lock_ignored () =
  let t =
    parse
      "C ub\n{ x=0; }\nP0(int *x) { rcu_read_unlock(); rcu_read_lock(); }\nexists (x=0)"
  in
  let x = List.hd (Exec.of_test t) in
  Alcotest.(check int) "no matched section" 0 (Rel.cardinal x.Exec.crit)

let test_rcu_counting_rule () =
  (* the rule of thumb (Section 4.2): forbidden iff #GPs >= #RSCSes in
     the cycle — two RSCSes vs one GP is allowed, two vs two forbidden *)
  Alcotest.(check bool) "2 rscs vs 1 gp allowed" true
    (verdict (battery "RCU+2rscs+1gp") = allow);
  Alcotest.(check bool) "2 rscs vs 2 gps forbidden" true
    (verdict (battery "RCU+2rscs+2gp") = forbid)

let test_law_agrees_on_battery () =
  List.iter
    (fun (e : Harness.Battery.entry) ->
      List.iter
        (fun x ->
          Alcotest.(check bool)
            (e.name ^ ": theorem 1 equivalence")
            true
            (Lkmm.Rcu.theorem1_holds x))
        (Exec.of_test (Harness.Battery.test_of e)))
    Harness.Battery.all

let test_law_violated_has_no_witness () =
  let c = weak_ctx (battery "RCU-MP") in
  Alcotest.(check bool) "no precedes function works" true
    (Lkmm.Rcu.law_witness c = None)

let test_law_witness_on_consistent () =
  let t = battery "RCU-MP" in
  let consistent = List.filter Lkmm.consistent (Exec.of_test t) in
  Alcotest.(check bool) "some consistent execution" true (consistent <> []);
  List.iter
    (fun x ->
      let c = Lkmm.Relations.make x in
      Alcotest.(check bool) "witness exists" true
        (Lkmm.Rcu.law_witness c <> None))
    consistent

let test_rcu_path_counts () =
  (* rcu-path pairs events through at least as many GPs as RSCSes; on the
     weak RCU-MP execution it must be reflexive somewhere *)
  let c = weak_ctx (battery "RCU-MP") in
  Alcotest.(check bool) "rcu-path reflexive on forbidden execution" false
    (Rel.is_irreflexive c.rcu_path)

(* ------------------------------------------------------------------ *)
(* Structural invariants of the Figure 8 relations                     *)
(* ------------------------------------------------------------------ *)

let all_battery_ctxs =
  lazy
    (List.concat_map
       (fun (e : Harness.Battery.entry) ->
         List.map Lkmm.Relations.make
           (Exec.of_test (Harness.Battery.test_of e)))
       Harness.Battery.all)

let for_all_ctxs name p =
  List.iteri
    (fun i c ->
      Alcotest.(check bool) (Printf.sprintf "%s (ctx %d)" name i) true (p c))
    (Lazy.force all_battery_ctxs)

let test_struct_fences_in_po () =
  (* every fence-induced ordering relates po-ordered events *)
  for_all_ctxs "fence subset of po" (fun c ->
      Rel.subset c.Lkmm.Relations.fence c.Lkmm.Relations.x.Exec.po);
  for_all_ctxs "gp subset of po" (fun c ->
      Rel.subset c.Lkmm.Relations.gp c.Lkmm.Relations.x.Exec.po);
  (* NB rscs is intentionally not within po: the paper lists backward
     pairs such as (b, a) among Figure 10's rscs *)
  for_all_ctxs "crit subset of po" (fun c ->
      Rel.subset c.Lkmm.Relations.crit c.Lkmm.Relations.x.Exec.po)

let test_struct_hierarchy () =
  for_all_ctxs "strong-fence subset of fence" (fun c ->
      Rel.subset c.Lkmm.Relations.strong_fence c.Lkmm.Relations.fence);
  for_all_ctxs "rfe subset of hb" (fun c ->
      Rel.subset c.Lkmm.Relations.x.Exec.rfe c.Lkmm.Relations.hb);
  for_all_ctxs "ppo subset of hb" (fun c ->
      Rel.subset c.Lkmm.Relations.ppo c.Lkmm.Relations.hb);
  for_all_ctxs "wmb subset of cumul-fence" (fun c ->
      Rel.subset c.Lkmm.Relations.wmb c.Lkmm.Relations.cumul_fence);
  for_all_ctxs "strong-rrdep subset of rrdep+" (fun c ->
      Rel.subset c.Lkmm.Relations.strong_rrdep
        (Rel.transitive_closure c.Lkmm.Relations.rrdep))

let test_struct_ppo_in_po_when_coherent () =
  (* on sc-per-variable-consistent executions, preserved program order
     really is program order *)
  List.iter
    (fun c ->
      if Lkmm.Axioms.holds c Lkmm.Axioms.Scpv then
        Alcotest.(check bool) "ppo subset of po" true
          (Rel.subset c.Lkmm.Relations.ppo c.Lkmm.Relations.x.Exec.po))
    (Lazy.force all_battery_ctxs)

let test_struct_rcu_path_needs_gps () =
  (* rcu-path is empty whenever the execution has no grace period *)
  for_all_ctxs "no gp, no rcu-path" (fun c ->
      (not (Rel.Iset.is_empty c.Lkmm.Relations.sync))
      || Rel.is_empty c.Lkmm.Relations.rcu_path)

(* ------------------------------------------------------------------ *)
(* Explanations                                                        *)
(* ------------------------------------------------------------------ *)

let test_explain_forbidden () =
  let c = weak_ctx (battery "SB+mbs") in
  let vs = Lkmm.Explain.violations_of c in
  Alcotest.(check bool) "exactly the pb violation" true
    (List.length vs = 1
    && (List.hd vs).Lkmm.Explain.axiom = Lkmm.Axioms.Pb
    && List.length (List.hd vs).Lkmm.Explain.cycle >= 2)

let test_explain_cycle_is_real () =
  List.iter
    (fun name ->
      let c = weak_ctx (battery name) in
      List.iter
        (fun (v : Lkmm.Explain.violation) ->
          let rel = Lkmm.Axioms.relation c v.axiom in
          let rec edges = function
            | a :: (b :: _ as rest) -> Rel.mem a b rel && edges rest
            | _ -> true
          in
          match v.axiom with
          | Lkmm.Axioms.At -> ()
          | _ ->
              Alcotest.(check bool)
                (name ^ ": explanation cycle has real edges")
                true (edges v.cycle))
        (Lkmm.Explain.violations_of c))
    [ "SB+mbs"; "MP+wmb+rmb"; "PeterZ"; "LB+ctrl+mb"; "RWC+mbs" ]

(* ------------------------------------------------------------------ *)
(* Properties over generated tests                                     *)
(* ------------------------------------------------------------------ *)

let generated_tests =
  lazy
    (let rng = Random.State.make [| 99 |] in
     Diygen.generate ~vocabulary:Diygen.Edge.core_vocabulary 4
     @ Diygen.sample ~vocabulary:Diygen.Edge.vocabulary ~rng ~count:40 5)

let test_prop_sc_subset_lk () =
  (* every SC-consistent execution is LK-consistent (LK is weaker) *)
  List.iter
    (fun t ->
      List.iter
        (fun x ->
          if Models.Sc.consistent x then
            Alcotest.(check bool)
              (t.Litmus.Ast.name ^ ": SC-consistent implies LK-consistent")
              true (Lkmm.consistent x))
        (Exec.of_test t))
    (Lazy.force generated_tests)

let test_prop_theorem1_generated () =
  List.iter
    (fun t ->
      List.iter
        (fun x ->
          Alcotest.(check bool)
            (t.Litmus.Ast.name ^ ": theorem 1")
            true
            (Lkmm.Rcu.theorem1_holds x))
        (Exec.of_test t))
    (Lazy.force generated_tests)

let test_prop_fences_monotone () =
  (* adding smp_mb everywhere can only forbid more: if the fully-fenced
     variant allows the outcome, so does the original *)
  let add_mb (t : Litmus.Ast.t) =
    let rec fence_after = function
      | [] -> []
      | i :: rest -> i :: Litmus.Ast.Fence Litmus.Ast.F_mb :: fence_after rest
    in
    { t with threads = Array.map fence_after t.threads }
  in
  List.iter
    (fun (t : Litmus.Ast.t) ->
      let v = verdict t and v' = verdict (add_mb t) in
      Alcotest.(check bool)
        (t.name ^ ": fencing never newly allows")
        false
        (v = forbid && v' = allow))
    (Lazy.force generated_tests)

let () =
  Alcotest.run "lkmm"
    [
      ( "figure8",
        [
          Alcotest.test_case "rwdep/ctrl" `Quick test_rwdep_ctrl;
          Alcotest.test_case "wmb" `Quick test_wmb_orders_writes_only;
          Alcotest.test_case "rmb" `Quick test_rmb_orders_reads_only;
          Alcotest.test_case "mb" `Quick test_mb_orders_everything;
          Alcotest.test_case "A-cumulativity" `Quick
            test_a_cumulativity_of_release;
          Alcotest.test_case "prop (fig 2)" `Quick test_prop_of_figure2;
          Alcotest.test_case "hb cycle (fig 4)" `Quick test_hb_cycle_figure4;
          Alcotest.test_case "pb cycle (fig 6)" `Quick test_pb_cycle_figure6;
          Alcotest.test_case "pb cycle (fig 7)" `Quick test_pb_cycle_figure7;
          Alcotest.test_case "rrdep prefix (fig 9)" `Quick
            test_rrdep_prefix_figure9;
          Alcotest.test_case "strong-rrdep barrier" `Quick
            test_strong_rrdep_needs_barrier;
          Alcotest.test_case "rfi-rel-acq" `Quick test_rfi_rel_acq;
          Alcotest.test_case "gp strong fence" `Quick test_gp_is_strong_fence;
        ] );
      ( "axioms",
        [
          Alcotest.test_case "violations per figure" `Quick
            test_axiom_violations;
          Alcotest.test_case "allowed is consistent" `Quick
            test_allowed_execution_consistent;
        ] );
      ( "verdicts",
        [ Alcotest.test_case "whole battery" `Quick test_battery_verdicts ] );
      ( "rcu",
        [
          Alcotest.test_case "crit nesting" `Quick test_crit_matching;
          Alcotest.test_case "unbalanced" `Quick test_unbalanced_lock_ignored;
          Alcotest.test_case "counting rule" `Quick test_rcu_counting_rule;
          Alcotest.test_case "theorem 1 on battery" `Slow
            test_law_agrees_on_battery;
          Alcotest.test_case "law has no witness when violated" `Quick
            test_law_violated_has_no_witness;
          Alcotest.test_case "law witness when consistent" `Quick
            test_law_witness_on_consistent;
          Alcotest.test_case "rcu-path reflexivity" `Quick
            test_rcu_path_counts;
        ] );
      ( "structure",
        [
          Alcotest.test_case "fences within po" `Quick
            test_struct_fences_in_po;
          Alcotest.test_case "relation hierarchy" `Quick
            test_struct_hierarchy;
          Alcotest.test_case "ppo within po (coherent)" `Quick
            test_struct_ppo_in_po_when_coherent;
          Alcotest.test_case "rcu-path needs gps" `Quick
            test_struct_rcu_path_needs_gps;
        ] );
      ( "explain",
        [
          Alcotest.test_case "single violation" `Quick test_explain_forbidden;
          Alcotest.test_case "cycles are real" `Quick
            test_explain_cycle_is_real;
        ] );
      ( "properties",
        [
          Alcotest.test_case "SC subset LK" `Slow test_prop_sc_subset_lk;
          Alcotest.test_case "theorem 1 generated" `Slow
            test_prop_theorem1_generated;
          Alcotest.test_case "fencing monotone" `Slow test_prop_fences_monotone;
        ] );
    ]
