(* Differential tests: the dense bitset kernel ({!Rel}) against the
   retained pair-set specification ({!Rel.Reference}), operator by
   operator, on randomized relations — plus end-to-end agreement checks
   on a corpus sample (verdicts with the coherence prefilter and the
   static-prefix cache on and off), and the soundness argument for the
   prefilter made executable: candidates it rejects never satisfy the
   model.

   Trial tally: the operator suite alone draws 2 relations per trial ×
   4000 trials, and the closure/sort/cycle suites another 2000 + 2000 +
   500 — comfortably over the 10k randomized relations the acceptance
   criteria ask for. *)

module D = Rel
module S = Rel.Reference
module Iset = Rel.Iset

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

(* (universe size, pairs1, pairs2): ids in [0, n).  Sizes cross word
   boundaries of the 63-bit rows at n = 64+. *)
let gen_input =
  let open QCheck2.Gen in
  let* n = oneofl [ 3; 6; 13; 24; 64; 70 ] in
  let pair = tup2 (int_range 0 (n - 1)) (int_range 0 (n - 1)) in
  let pairs = list_size (int_range 0 (2 * n)) pair in
  tup3 (return n) pairs pairs

let agree d s = D.to_list d = S.to_list s

(* ------------------------------------------------------------------ *)
(* Operator-by-operator agreement                                      *)
(* ------------------------------------------------------------------ *)

let prop_ops_agree =
  QCheck2.Test.make ~name:"every operator agrees with the reference"
    ~count:4000 gen_input (fun (n, ps1, ps2) ->
      let d1 = D.of_list ps1 and d2 = D.of_list ps2 in
      let s1 = S.of_list ps1 and s2 = S.of_list ps2 in
      let u = Iset.of_range 0 (n - 1) in
      let half = Iset.of_range 0 (n / 2) in
      let p a b = (a + b) mod 2 = 0 in
      agree d1 s1 && agree d2 s2
      && D.cardinal d1 = S.cardinal s1
      && D.is_empty d1 = S.is_empty s1
      && D.equal d1 d2 = S.equal s1 s2
      && D.subset d1 d2 = S.subset s1 s2
      && D.mem 0 (n - 1) d1 = S.mem 0 (n - 1) s1
      && agree (D.add (n - 1) 0 d1) (S.add (n - 1) 0 s1)
      && agree (D.union d1 d2) (S.union s1 s2)
      && agree (D.inter d1 d2) (S.inter s1 s2)
      && agree (D.diff d1 d2) (S.diff s1 s2)
      && agree (D.seq d1 d2) (S.seq s1 s2)
      && agree (D.seqs [ d1; d2; d1 ]) (S.seqs [ s1; s2; s1 ])
      && agree (D.inverse d1) (S.inverse s1)
      && agree (D.filter p d1) (S.filter p s1)
      && D.exists p d1 = S.exists p s1
      && D.for_all p d1 = S.for_all p s1
      && Iset.equal (D.domain d1) (S.domain s1)
      && Iset.equal (D.range d1) (S.range s1)
      && Iset.equal (D.field d1) (S.field s1)
      && agree (D.id_of_set half) (S.id_of_set half)
      && agree (D.cartesian half u) (S.cartesian half u)
      && agree (D.restrict_domain half d1) (S.restrict_domain half s1)
      && agree (D.restrict_range half d1) (S.restrict_range half s1)
      && agree (D.restrict half d1) (S.restrict half s1)
      && agree (D.complement ~universe:u d1) (S.complement ~universe:u s1)
      && D.fold (fun a b acc -> (a, b) :: acc) d1 []
         = S.fold (fun a b acc -> (a, b) :: acc) s1 [])

let prop_closures_agree =
  QCheck2.Test.make ~name:"closures agree with the reference" ~count:2000
    gen_input (fun (n, ps1, _) ->
      let d = D.of_list ps1 and s = S.of_list ps1 in
      let u = Iset.of_range 0 (n - 1) in
      agree (D.transitive_closure d) (S.transitive_closure s)
      && agree (D.reflexive_closure ~universe:u d)
           (S.reflexive_closure ~universe:u s)
      && agree
           (D.reflexive_transitive_closure ~universe:u d)
           (S.reflexive_transitive_closure ~universe:u s))

let prop_cyclicity_agrees =
  QCheck2.Test.make ~name:"acyclicity, cycles and sorts agree" ~count:2000
    gen_input (fun (n, ps1, _) ->
      let d = D.of_list ps1 and s = S.of_list ps1 in
      let u = Iset.of_range 0 (n - 1) in
      D.is_acyclic d = S.is_acyclic s
      && D.is_irreflexive d = S.is_irreflexive s
      (* both return a *shortest* cycle; the witness may differ, its
         length may not *)
      && Option.map List.length (D.find_cycle d)
         = Option.map List.length (S.find_cycle s)
      && D.topological_sort ~universe:u d = S.topological_sort ~universe:u s)

let prop_linear_extensions_agree =
  QCheck2.Test.make ~name:"linear extensions agree (incl. duplicates)"
    ~count:500
    QCheck2.Gen.(list_size (int_range 0 4) (int_range 0 3))
    (fun elems ->
      let sort = List.sort compare in
      sort (List.map D.to_list (D.linear_extensions elems))
      = sort (List.map S.to_list (S.linear_extensions elems)))

(* ------------------------------------------------------------------ *)
(* Corpus sample: end-to-end agreement and prefilter soundness         *)
(* ------------------------------------------------------------------ *)

let corpus_dir =
  (* tests run from _build/default/test *)
  List.find_opt Sys.file_exists [ "../../../corpus"; "corpus" ]

(* Every [stride]-th manifest entry — a fixed, spread-out sample. *)
let sample_tests stride =
  match corpus_dir with
  | None -> Alcotest.fail "corpus directory not found"
  | Some dir ->
      Harness.Runner.read_file (Filename.concat dir "MANIFEST")
      |> String.split_on_char '\n'
      |> List.filter (fun l -> l <> "" && l.[0] <> '#')
      |> List.filteri (fun i _ -> i mod stride = 0)
      |> List.map (fun line ->
             let file = List.hd (String.split_on_char ' ' line) in
             ( file,
               Litmus.parse (Harness.Runner.read_file (Filename.concat dir file))
             ))

let result_key (r : Exec.Check.result) =
  (r.verdict, r.n_candidates, r.n_consistent, r.n_matching, r.outcomes)

(* The prefilter and both caches must be invisible in the results (only
   n_prefiltered differs by construction, so compare everything else). *)
let test_corpus_agreement () =
  let lk_cat = Lazy.force Cat.lk in
  List.iter
    (fun (file, test) ->
      let native_on = Exec.Check.run (module Lkmm) test in
      let native_off = Exec.Check.run ~prefilter:false (module Lkmm) test in
      Alcotest.(check bool)
        (file ^ ": native verdicts agree with prefilter off")
        true
        (result_key native_on = result_key native_off
        && native_off.n_prefiltered = 0);
      let cat_cached =
        Exec.Check.run (Cat.to_check_model ~name:"LK(cat)" lk_cat) test
      in
      let cat_plain =
        Exec.Check.run
          (Cat.to_check_model ~name:"LK(cat)" ~cache:false lk_cat)
          test
      in
      Alcotest.(check bool)
        (file ^ ": cat verdicts agree with static-prefix cache off")
        true
        (result_key cat_cached = result_key cat_plain);
      Alcotest.(check bool)
        (file ^ ": native and cat verdicts agree")
        true
        (native_on.verdict = cat_cached.verdict))
    (sample_tests 11)

(* Run the model anyway on every candidate the prefilter rejects: none
   may be consistent, under the native axioms or the cat interpreter —
   the executable form of the soundness argument (an sc-per-location
   cycle violates a constraint of every shipped model). *)
let test_prefilter_soundness () =
  let lk_cat = Lazy.force Cat.lk in
  let rejected = ref 0 in
  List.iter
    (fun (file, test) ->
      Seq.iter
        (fun x ->
          if not (Exec.coherent x) then begin
            incr rejected;
            Alcotest.(check bool)
              (file ^ ": prefilter-rejected candidate fails the LK axioms")
              false (Lkmm.consistent x);
            Alcotest.(check bool)
              (file ^ ": prefilter-rejected candidate fails the cat model")
              false
              (Cat.consistent lk_cat x)
          end)
        (Exec.of_test_seq test))
    (sample_tests 9);
  Alcotest.(check bool) "sample exercises the prefilter" true (!rejected > 20)

let () =
  Alcotest.run "rel_dense"
    [
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_ops_agree;
            prop_closures_agree;
            prop_cyclicity_agrees;
            prop_linear_extensions_agree;
          ] );
      ( "end-to-end",
        [
          Alcotest.test_case "corpus sample agreement" `Quick
            test_corpus_agreement;
          Alcotest.test_case "prefilter soundness" `Quick
            test_prefilter_soundness;
        ] );
    ]
