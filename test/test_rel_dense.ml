(* Differential tests: the dense bitset kernel ({!Rel}) against the
   retained pair-set specification ({!Rel.Reference}), operator by
   operator, on randomized relations — plus end-to-end agreement checks
   on a corpus sample (verdicts with the coherence prefilter and the
   static-prefix cache on and off), and the soundness argument for the
   prefilter made executable: candidates it rejects never satisfy the
   model.

   The candidate-major bit-plane kernel ({!Rel.Batch}) gets the same
   treatment: every batched operator and decision mask against a scalar
   loop over the planes, randomized over universe size, plane count and
   mask — plus corpus-wide agreement of {!Exec.Check.run} results with
   batching on/off × prefilter on/off, for the native LKMM and the cat
   interpreter (witness identity included, not just verdicts).

   Trial tally: the operator suite alone draws 2 relations per trial ×
   4000 trials, the closure/sort/cycle suites another 2000 + 2000 +
   500, and the batch suite 2 × 1500 trials of up to 63 planes each
   (~40k plane comparisons) — comfortably over the 10k randomized
   relations the acceptance criteria ask for. *)

module D = Rel
module S = Rel.Reference
module Iset = Rel.Iset

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

(* (universe size, pairs1, pairs2): ids in [0, n).  Sizes cross word
   boundaries of the 63-bit rows at n = 64+. *)
let gen_input =
  let open QCheck2.Gen in
  let* n = oneofl [ 3; 6; 13; 24; 64; 70 ] in
  let pair = tup2 (int_range 0 (n - 1)) (int_range 0 (n - 1)) in
  let pairs = list_size (int_range 0 (2 * n)) pair in
  tup3 (return n) pairs pairs

let agree d s = D.to_list d = S.to_list s

(* ------------------------------------------------------------------ *)
(* Operator-by-operator agreement                                      *)
(* ------------------------------------------------------------------ *)

let prop_ops_agree =
  QCheck2.Test.make ~name:"every operator agrees with the reference"
    ~count:4000 gen_input (fun (n, ps1, ps2) ->
      let d1 = D.of_list ps1 and d2 = D.of_list ps2 in
      let s1 = S.of_list ps1 and s2 = S.of_list ps2 in
      let u = Iset.of_range 0 (n - 1) in
      let half = Iset.of_range 0 (n / 2) in
      let p a b = (a + b) mod 2 = 0 in
      agree d1 s1 && agree d2 s2
      && D.cardinal d1 = S.cardinal s1
      && D.is_empty d1 = S.is_empty s1
      && D.equal d1 d2 = S.equal s1 s2
      && D.subset d1 d2 = S.subset s1 s2
      && D.mem 0 (n - 1) d1 = S.mem 0 (n - 1) s1
      && agree (D.add (n - 1) 0 d1) (S.add (n - 1) 0 s1)
      && agree (D.union d1 d2) (S.union s1 s2)
      && agree (D.inter d1 d2) (S.inter s1 s2)
      && agree (D.diff d1 d2) (S.diff s1 s2)
      && agree (D.seq d1 d2) (S.seq s1 s2)
      && agree (D.seqs [ d1; d2; d1 ]) (S.seqs [ s1; s2; s1 ])
      && agree (D.inverse d1) (S.inverse s1)
      && agree (D.filter p d1) (S.filter p s1)
      && D.exists p d1 = S.exists p s1
      && D.for_all p d1 = S.for_all p s1
      && Iset.equal (D.domain d1) (S.domain s1)
      && Iset.equal (D.range d1) (S.range s1)
      && Iset.equal (D.field d1) (S.field s1)
      && agree (D.id_of_set half) (S.id_of_set half)
      && agree (D.cartesian half u) (S.cartesian half u)
      && agree (D.restrict_domain half d1) (S.restrict_domain half s1)
      && agree (D.restrict_range half d1) (S.restrict_range half s1)
      && agree (D.restrict half d1) (S.restrict half s1)
      && agree (D.complement ~universe:u d1) (S.complement ~universe:u s1)
      && D.fold (fun a b acc -> (a, b) :: acc) d1 []
         = S.fold (fun a b acc -> (a, b) :: acc) s1 [])

let prop_closures_agree =
  QCheck2.Test.make ~name:"closures agree with the reference" ~count:2000
    gen_input (fun (n, ps1, _) ->
      let d = D.of_list ps1 and s = S.of_list ps1 in
      let u = Iset.of_range 0 (n - 1) in
      agree (D.transitive_closure d) (S.transitive_closure s)
      && agree (D.reflexive_closure ~universe:u d)
           (S.reflexive_closure ~universe:u s)
      && agree
           (D.reflexive_transitive_closure ~universe:u d)
           (S.reflexive_transitive_closure ~universe:u s))

let prop_cyclicity_agrees =
  QCheck2.Test.make ~name:"acyclicity, cycles and sorts agree" ~count:2000
    gen_input (fun (n, ps1, _) ->
      let d = D.of_list ps1 and s = S.of_list ps1 in
      let u = Iset.of_range 0 (n - 1) in
      D.is_acyclic d = S.is_acyclic s
      && D.is_irreflexive d = S.is_irreflexive s
      (* both return a *shortest* cycle; the witness may differ, its
         length may not *)
      && Option.map List.length (D.find_cycle d)
         = Option.map List.length (S.find_cycle s)
      && D.topological_sort ~universe:u d = S.topological_sort ~universe:u s)

let prop_linear_extensions_agree =
  QCheck2.Test.make ~name:"linear extensions agree (incl. duplicates)"
    ~count:500
    QCheck2.Gen.(list_size (int_range 0 4) (int_range 0 3))
    (fun elems ->
      let sort = List.sort compare in
      sort (List.map D.to_list (D.linear_extensions elems))
      = sort (List.map S.to_list (S.linear_extensions elems)))

(* ------------------------------------------------------------------ *)
(* The bit-plane batch kernel against a scalar loop                    *)
(* ------------------------------------------------------------------ *)

module B = Rel.Batch

(* (universe size, plane count, mask, per-plane pairs ×2): universes at
   litmus scale (the kernel packs candidates, not big universes), plane
   counts up to the full word including the k = 63 [full_mask] edge
   case, and a random submask so masked variants are exercised with
   decided planes present. *)
let gen_batch_input =
  let open QCheck2.Gen in
  let* n = oneofl [ 2; 5; 9; 14 ] in
  let* k = oneofl [ 1; 2; 3; 7; 20; 62; 63 ] in
  let* mask_bits = int_bound ((1 lsl min k 30) - 1) in
  let mask = B.full_mask k land lnot mask_bits in
  let pair = tup2 (int_range 0 (n - 1)) (int_range 0 (n - 1)) in
  let pairs = list_size (int_range 0 (2 * n)) pair in
  let plane_list = list_repeat k pairs in
  tup5 (return n) (return k) (return mask) plane_list plane_list

(* Expected mask of a per-plane predicate, by scalar loop. *)
let mask_of k pred rels =
  let m = ref 0 in
  for c = 0 to k - 1 do
    if pred rels.(c) then m := !m lor (1 lsl c)
  done;
  !m

let prop_batch_ops_agree =
  QCheck2.Test.make ~name:"batched operators agree with a scalar loop"
    ~count:1500 gen_batch_input (fun (n, k, _mask, pls1, pls2) ->
      let rels1 = Array.of_list (List.map D.of_list pls1) in
      let rels2 = Array.of_list (List.map D.of_list pls2) in
      let b1 = B.of_rels ~n rels1 and b2 = B.of_rels ~n rels2 in
      let u = Iset.of_range 0 (n - 1) in
      let full = B.full_mask k in
      (* a batched op agrees iff every plane extracts to the scalar
         op's result on that plane's inputs *)
      let planes_agree b f =
        let ok = ref true in
        for c = 0 to k - 1 do
          ok := !ok && D.equal (B.plane b c) (f rels1.(c) rels2.(c))
        done;
        !ok
      in
      planes_agree b1 (fun r _ -> r)
      && planes_agree (B.union b1 b2) D.union
      && planes_agree (B.inter b1 b2) D.inter
      && planes_agree (B.diff b1 b2) D.diff
      && planes_agree (B.seq b1 b2) D.seq
      && planes_agree (B.inverse b1) (fun r _ -> D.inverse r)
      && planes_agree (B.transitive_closure b1) (fun r _ ->
             D.transitive_closure r)
      && planes_agree
           (B.reflexive_closure ~mask:full b1)
           (fun r _ -> D.reflexive_closure ~universe:u r)
      && planes_agree
           (B.reflexive_transitive_closure ~mask:full b1)
           (fun r _ -> D.reflexive_transitive_closure ~universe:u r)
      && planes_agree (B.complement ~mask:full b1) (fun r _ ->
             D.complement ~universe:u r)
      && B.equal b1 b2 = Array.for_all2 D.equal rels1 rels2)

let prop_batch_masks_agree =
  QCheck2.Test.make ~name:"batched decision masks agree with a scalar loop"
    ~count:1500 gen_batch_input (fun (n, k, mask, pls1, _pls2) ->
      let rels1 = Array.of_list (List.map D.of_list pls1) in
      let b1 = B.of_rels ~n rels1 in
      let bm = B.of_rels ~n ~mask rels1 in
      let is_cyclic r = not (D.is_acyclic r) in
      let is_reflexive r = not (D.is_irreflexive r) in
      (* unmasked decision masks *)
      B.nonempty_mask b1 = mask_of k (fun r -> not (D.is_empty r)) rels1
      && B.reflexive_mask b1 = mask_of k is_reflexive rels1
      && B.cyclic_mask b1 = mask_of k is_cyclic rels1
      (* masked variants answer within the mask only *)
      && B.acyclic_mask ~mask b1 = mask land mask_of k D.is_acyclic rels1
      && B.irreflexive_mask ~mask b1
         = mask land mask_of k D.is_irreflexive rels1
      && B.empty_mask ~mask b1 = mask land mask_of k D.is_empty rels1
      (* of_rels ~mask keeps only the masked planes *)
      && (let ok = ref true in
          for c = 0 to k - 1 do
            let expect =
              if mask land (1 lsl c) <> 0 then rels1.(c) else D.empty
            in
            ok := !ok && D.equal (B.plane bm c) expect
          done;
          !ok)
      (* restrict zeroes planes outside the mask *)
      && (let r = B.restrict ~mask b1 in
          let ok = ref true in
          for c = 0 to k - 1 do
            let expect =
              if mask land (1 lsl c) <> 0 then rels1.(c) else D.empty
            in
            ok := !ok && D.equal (B.plane r c) expect
          done;
          !ok)
      (* broadcast holds the relation in masked planes only *)
      && (let r0 = if Array.length rels1 > 0 then rels1.(0) else D.empty in
          let b = B.broadcast ~n ~mask r0 in
          let ok = ref true in
          for c = 0 to k - 1 do
            let expect = if mask land (1 lsl c) <> 0 then r0 else D.empty in
            ok := !ok && D.equal (B.plane b c) expect
          done;
          !ok)
      (* mem answers per plane *)
      && B.mem 0 (n - 1) b1 = mask_of k (D.mem 0 (n - 1)) rels1)

(* ------------------------------------------------------------------ *)
(* Corpus sample: end-to-end agreement and prefilter soundness         *)
(* ------------------------------------------------------------------ *)

let corpus_dir =
  (* tests run from _build/default/test *)
  List.find_opt Sys.file_exists [ "../../../corpus"; "corpus" ]

(* Every [stride]-th manifest entry — a fixed, spread-out sample. *)
let sample_tests stride =
  match corpus_dir with
  | None -> Alcotest.fail "corpus directory not found"
  | Some dir ->
      Harness.Runner.read_file (Filename.concat dir "MANIFEST")
      |> String.split_on_char '\n'
      |> List.filter (fun l -> l <> "" && l.[0] <> '#')
      |> List.filteri (fun i _ -> i mod stride = 0)
      |> List.map (fun line ->
             let file = List.hd (String.split_on_char ' ' line) in
             ( file,
               Litmus.parse (Harness.Runner.read_file (Filename.concat dir file))
             ))

let result_key (r : Exec.Check.result) =
  (r.verdict, r.n_candidates, r.n_consistent, r.n_matching, r.outcomes)

(* The prefilter and both caches must be invisible in the results (only
   n_prefiltered differs by construction, so compare everything else). *)
let test_corpus_agreement () =
  let lk_cat = Lazy.force Cat.lk in
  List.iter
    (fun (file, test) ->
      let native_on = Exec.Check.run (module Lkmm) test in
      let native_off = Exec.Check.run ~prefilter:false (module Lkmm) test in
      Alcotest.(check bool)
        (file ^ ": native verdicts agree with prefilter off")
        true
        (result_key native_on = result_key native_off
        && native_off.n_prefiltered = 0);
      let cat_cached =
        Exec.Check.run (Cat.to_check_model ~name:"LK(cat)" lk_cat) test
      in
      let cat_plain =
        Exec.Check.run
          (Cat.to_check_model ~name:"LK(cat)" ~cache:false lk_cat)
          test
      in
      Alcotest.(check bool)
        (file ^ ": cat verdicts agree with static-prefix cache off")
        true
        (result_key cat_cached = result_key cat_plain);
      Alcotest.(check bool)
        (file ^ ": native and cat verdicts agree")
        true
        (native_on.verdict = cat_cached.verdict))
    (sample_tests 11)

(* Batched evaluation (bit planes + delta re-checking) must be invisible
   in the results, down to witness identity — the correctness contract of
   the batched path.  Exercised batch on/off × prefilter on/off, for the
   native axioms and the cat interpreter. *)
let witness_rels (x : Exec.t option) =
  Option.map (fun (x : Exec.t) -> (Rel.to_list x.rf, Rel.to_list x.co)) x

let full_key (r : Exec.Check.result) =
  (result_key r, r.n_prefiltered, witness_rels r.witness)

let test_batched_agreement () =
  let lk_cat = Lazy.force Cat.lk in
  let cat_scalar_m = Cat.to_check_model ~name:"LK(cat)" lk_cat in
  let cat_batched_m, cat_batch = Cat.to_batched_model ~name:"LK(cat)" lk_cat in
  List.iter
    (fun (file, test) ->
      let pair what scalar batched =
        Alcotest.(check bool)
          (Printf.sprintf "%s: %s agrees batched vs scalar" file what)
          true
          (full_key scalar = full_key batched)
      in
      (* the scalar reference path is what --no-batch selects: batching
         off AND delta re-evaluation off *)
      let native_scalar = Exec.Check.run ~delta:false (module Lkmm) test in
      pair "native"
        native_scalar
        (Exec.Check.run ~batch:Lkmm.consistent_mask (module Lkmm) test);
      pair "native (delta only)" native_scalar
        (Exec.Check.run (module Lkmm) test);
      pair "native, prefilter off"
        (Exec.Check.run ~prefilter:false ~delta:false (module Lkmm) test)
        (Exec.Check.run ~prefilter:false ~batch:Lkmm.consistent_mask
           (module Lkmm) test);
      pair "cat"
        (Exec.Check.run ~delta:false cat_scalar_m test)
        (Exec.Check.run ~batch:cat_batch cat_batched_m test);
      pair "cat, prefilter off"
        (Exec.Check.run ~prefilter:false ~delta:false cat_scalar_m test)
        (Exec.Check.run ~prefilter:false ~batch:cat_batch cat_batched_m test))
    (sample_tests 11)

(* Run the model anyway on every candidate the prefilter rejects: none
   may be consistent, under the native axioms or the cat interpreter —
   the executable form of the soundness argument (an sc-per-location
   cycle violates a constraint of every shipped model). *)
let test_prefilter_soundness () =
  let lk_cat = Lazy.force Cat.lk in
  let rejected = ref 0 in
  List.iter
    (fun (file, test) ->
      Seq.iter
        (fun x ->
          if not (Exec.coherent x) then begin
            incr rejected;
            Alcotest.(check bool)
              (file ^ ": prefilter-rejected candidate fails the LK axioms")
              false (Lkmm.consistent x);
            Alcotest.(check bool)
              (file ^ ": prefilter-rejected candidate fails the cat model")
              false
              (Cat.consistent lk_cat x)
          end)
        (Exec.of_test_seq test))
    (sample_tests 9);
  Alcotest.(check bool) "sample exercises the prefilter" true (!rejected > 20)

let () =
  Alcotest.run "rel_dense"
    [
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_ops_agree;
            prop_closures_agree;
            prop_cyclicity_agrees;
            prop_linear_extensions_agree;
            prop_batch_ops_agree;
            prop_batch_masks_agree;
          ] );
      ( "end-to-end",
        [
          Alcotest.test_case "corpus sample agreement" `Quick
            test_corpus_agreement;
          Alcotest.test_case "batched vs scalar agreement" `Quick
            test_batched_agreement;
          Alcotest.test_case "prefilter soundness" `Quick
            test_prefilter_soundness;
        ] );
    ]
