(* Tests for the diy-style generator: edge algebra, cycle enumeration,
   realisation of the classic shapes, and self-validation. *)

module E = Diygen.Edge
module C = Diygen.Cycle

(* ------------------------------------------------------------------ *)
(* Edges                                                               *)
(* ------------------------------------------------------------------ *)

let test_edge_directions () =
  Alcotest.(check bool) "Rfe: W -> R" true
    (E.src_dir E.Rfe = Some E.W && E.tgt_dir E.Rfe = Some E.R);
  Alcotest.(check bool) "Fre: R -> W" true
    (E.src_dir E.Fre = Some E.R && E.tgt_dir E.Fre = Some E.W);
  Alcotest.(check bool) "Dp from a read" true
    (E.src_dir (E.Dp (E.Addr, E.R)) = Some E.R);
  Alcotest.(check bool) "Po_rel into a write" true
    (E.tgt_dir (E.Po_rel E.R) = Some E.W)

let test_edge_classification () =
  Alcotest.(check bool) "communications are external" true
    (List.for_all E.external_ [ E.Rfe; E.Fre; E.Coe ]);
  Alcotest.(check bool) "po edges are internal" true
    (not (E.external_ (E.Pod (E.R, E.W))));
  Alcotest.(check bool) "Pos stays on the location" false
    (E.diff_loc (E.Pos (E.W, E.R)));
  Alcotest.(check bool) "communications stay on the location" true
    (List.for_all (fun e -> not (E.diff_loc e)) [ E.Rfe; E.Fre; E.Coe ])

let test_edge_names_unique () =
  let names = List.map E.to_string E.vocabulary in
  Alcotest.(check int) "distinct names" (List.length names)
    (List.length (List.sort_uniq compare names))

(* ------------------------------------------------------------------ *)
(* Cycles                                                              *)
(* ------------------------------------------------------------------ *)

let mp_cycle = [ E.Pod (E.W, E.W); E.Rfe; E.Pod (E.R, E.R); E.Fre ]
let sb_cycle = [ E.Pod (E.W, E.R); E.Fre; E.Pod (E.W, E.R); E.Fre ]

let test_sane () =
  Alcotest.(check bool) "MP is sane" true (C.sane mp_cycle);
  Alcotest.(check bool) "SB is sane" true (C.sane sb_cycle);
  (* Rfe ends in a read; another Rfe must start from a write *)
  Alcotest.(check bool) "mismatched junction rejected" false
    (C.sane [ E.Rfe; E.Rfe; E.Fre; E.Fre ]);
  Alcotest.(check bool) "Rfe then Coe rejected" false
    (C.sane [ E.Rfe; E.Coe; E.Fre; E.Pod (E.W, E.W) ]);
  Alcotest.(check bool) "one external edge rejected" false
    (C.sane [ E.Rfe; E.Pod (E.R, E.W); E.Pod (E.W, E.W) ]);
  Alcotest.(check bool) "single diff-loc edge rejected" false
    (C.sane [ E.Rfe; E.Pod (E.R, E.R); E.Fre ])

let test_canonical_rotation_invariant () =
  let rots = C.rotations mp_cycle in
  List.iter
    (fun r ->
      Alcotest.(check string) "same canonical form" (C.name (C.canonical mp_cycle))
        (C.name (C.canonical r)))
    rots

let test_enumerate_no_duplicates () =
  let cycles = C.enumerate ~vocabulary:[ E.Rfe; E.Fre; E.Coe; E.Pod (E.W, E.W); E.Pod (E.R, E.R); E.Pod (E.W, E.R) ] 4 in
  let names = List.map C.name cycles in
  Alcotest.(check int) "no duplicate canonical cycles" (List.length names)
    (List.length (List.sort_uniq compare names));
  Alcotest.(check bool) "all sane" true (List.for_all C.sane cycles)

(* ------------------------------------------------------------------ *)
(* Realisation                                                         *)
(* ------------------------------------------------------------------ *)

let realize c =
  match Diygen.Realize.test_of_cycle c with
  | Some t -> t
  | None -> Alcotest.fail ("cannot realize " ^ C.name c)

let test_realize_mp () =
  let t = realize mp_cycle in
  Alcotest.(check int) "two threads" 2 (Array.length t.Litmus.Ast.threads);
  (* it really is MP: same verdicts as the named battery test *)
  Alcotest.(check bool) "MP is allowed" true
    ((Lkmm.check t).Exec.Check.verdict = Exec.Check.Allow)

let test_realize_fenced_variants () =
  let check cycle expected =
    let t = realize cycle in
    Alcotest.(check bool)
      (C.name cycle ^ " expected " ^ Exec.Check.verdict_to_string expected)
      true
      ((Lkmm.check t).Exec.Check.verdict = expected)
  in
  (* MP family *)
  check mp_cycle Exec.Check.Allow;
  check [ E.Fenced (E.Wmb, E.W, E.W); E.Rfe; E.Fenced (E.Rmb, E.R, E.R); E.Fre ]
    Exec.Check.Forbid;
  check [ E.Po_rel E.W; E.Rfe; E.Acq_po E.R; E.Fre ] Exec.Check.Forbid;
  (* SB family *)
  check sb_cycle Exec.Check.Allow;
  check [ E.Fenced (E.Mb, E.W, E.R); E.Fre; E.Fenced (E.Mb, E.W, E.R); E.Fre ]
    Exec.Check.Forbid;
  (* synchronize_rcu acts as a strong fence in generated tests too *)
  check [ E.Fenced (E.Sync, E.W, E.R); E.Fre; E.Fenced (E.Mb, E.W, E.R); E.Fre ]
    Exec.Check.Forbid;
  (* LB with data dependencies *)
  check [ E.Dp (E.Data, E.W); E.Rfe; E.Dp (E.Data, E.W); E.Rfe ]
    Exec.Check.Forbid;
  (* Alpha: plain address dependency in the read-read position *)
  check [ E.Dp (E.Addr, E.R); E.Fre; E.Fenced (E.Wmb, E.W, E.W); E.Rfe ]
    Exec.Check.Allow

let test_realized_condition_is_reachable () =
  (* self-validation contract: the condition identifies at least one
     candidate execution *)
  let rng = Random.State.make [| 42 |] in
  let tests = Diygen.sample ~vocabulary:E.vocabulary ~rng ~count:30 4 in
  Alcotest.(check bool) "sample nonempty" true (List.length tests > 10);
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (t.Litmus.Ast.name ^ " condition reachable")
        true
        (List.exists Exec.satisfies_cond (Exec.of_test t)))
    tests

let test_realized_tests_parse_back () =
  let rng = Random.State.make [| 43 |] in
  let tests = Diygen.sample ~vocabulary:E.core_vocabulary ~rng ~count:20 5 in
  List.iter
    (fun t ->
      let t' = Litmus.parse (Litmus.to_string t) in
      Alcotest.(check bool)
        (t.Litmus.Ast.name ^ " prints and reparses")
        true
        (t.Litmus.Ast.threads = t'.Litmus.Ast.threads))
    tests

let test_dependency_edges_materialise () =
  (* an addr-dep cycle yields a test whose executions carry addr edges *)
  let t = realize [ E.Dp (E.Addr, E.W); E.Rfe; E.Dp (E.Addr, E.W); E.Rfe ] in
  let x = List.hd (Exec.of_test t) in
  Alcotest.(check bool) "addr edge present" false (Rel.is_empty x.Exec.addr)

let test_ctrl_edges_materialise () =
  let t = realize [ E.Dp (E.Ctrl, E.W); E.Rfe; E.Dp (E.Ctrl, E.W); E.Rfe ] in
  Alcotest.(check bool) "ctrl edge present" true
    (List.exists
       (fun x -> not (Rel.is_empty x.Exec.ctrl))
       (Exec.of_test t))

let test_generate_sizes () =
  let n3 = Diygen.generate ~vocabulary:E.core_vocabulary 3 in
  let n4 = Diygen.generate ~vocabulary:[ E.Rfe; E.Fre; E.Coe; E.Pod (E.W, E.W); E.Pod (E.R, E.R); E.Pod (E.W, E.R); E.Pod (E.R, E.W) ] 4 in
  Alcotest.(check bool) "size 3 small but nonempty" true (List.length n3 >= 1);
  Alcotest.(check bool) "size 4 has the classics" true (List.length n4 >= 10)

(* ------------------------------------------------------------------ *)
(* Deterministic seed-range generation (campaign shards)               *)
(* ------------------------------------------------------------------ *)

(* Campaign shards regenerate their tests from (config, seed) alone:
   the same range must yield the byte-identical tests, every time. *)
let test_seed_range_deterministic () =
  let gen () =
    List.map
      (fun (seed, (t : Litmus.Ast.t)) -> (seed, t.name, Litmus.to_string t))
      (Diygen.generate_range ~vocabulary:E.core_vocabulary ~size:4 0 400)
  in
  let a = gen () and b = gen () in
  Alcotest.(check bool) "some seeds realise" true (List.length a > 3);
  Alcotest.(check bool) "byte-identical across calls" true (a = b);
  (* a sub-range is a sub-list: seeds are independent, not a stream *)
  let sub =
    List.map
      (fun (seed, (t : Litmus.Ast.t)) -> (seed, t.name, Litmus.to_string t))
      (Diygen.generate_range ~vocabulary:E.core_vocabulary ~size:4 100 300)
  in
  Alcotest.(check bool) "range-independent" true
    (List.for_all (fun x -> List.mem x a) sub
     && List.for_all
          (fun ((s, _, _) as x) ->
            if s >= 100 && s < 300 then List.mem x sub else true)
          a)

let test_seed_denotes_canonical_test () =
  (* the walk is canonicalised before realisation, so a seed's test is
     stable under the name <-> cycle bijection the corpus relies on *)
  List.iter
    (fun seed ->
      match Diygen.test_of_seed ~vocabulary:E.core_vocabulary ~size:4 seed with
      | None -> ()
      | Some t -> (
          match
            Diygen.test_of_seed ~vocabulary:E.core_vocabulary ~size:4 seed
          with
          | Some t' ->
              Alcotest.(check string) "stable name" t.Litmus.Ast.name
                t'.Litmus.Ast.name;
              Alcotest.(check string) "stable source" (Litmus.to_string t)
                (Litmus.to_string t')
          | None -> Alcotest.fail "seed flickered"))
    [ 0; 1; 7; 79; 123; 1024 ]

let () =
  Alcotest.run "diygen"
    [
      ( "edges",
        [
          Alcotest.test_case "directions" `Quick test_edge_directions;
          Alcotest.test_case "classification" `Quick test_edge_classification;
          Alcotest.test_case "unique names" `Quick test_edge_names_unique;
        ] );
      ( "cycles",
        [
          Alcotest.test_case "sanity" `Quick test_sane;
          Alcotest.test_case "canonical rotations" `Quick
            test_canonical_rotation_invariant;
          Alcotest.test_case "no duplicates" `Quick
            test_enumerate_no_duplicates;
        ] );
      ( "realisation",
        [
          Alcotest.test_case "MP" `Quick test_realize_mp;
          Alcotest.test_case "fenced variants" `Quick
            test_realize_fenced_variants;
          Alcotest.test_case "conditions reachable" `Slow
            test_realized_condition_is_reachable;
          Alcotest.test_case "parse back" `Quick test_realized_tests_parse_back;
          Alcotest.test_case "addr edges" `Quick
            test_dependency_edges_materialise;
          Alcotest.test_case "ctrl edges" `Quick test_ctrl_edges_materialise;
          Alcotest.test_case "sizes" `Quick test_generate_sizes;
        ] );
      ( "seed ranges",
        [
          Alcotest.test_case "deterministic" `Quick
            test_seed_range_deterministic;
          Alcotest.test_case "canonical per seed" `Quick
            test_seed_denotes_canonical_test;
        ] );
    ]
