(* Tests for verdict forensics (ISSUE 5): golden explanation text on
   three canonical forbidden tests (message passing, store buffering,
   RCU), the property that every explanation produced over the whole
   battery re-validates edge-by-edge against an independently built
   resolver, tamper-detection of the validator, and the counterexample/
   explanations plumbing of Exec.Check.

   Goldens live in test/goldens/; regenerate with
     UPDATE_GOLDENS=1 dune runtest *)

let battery name = Harness.Battery.test_of (Harness.Battery.find name)
let lk_cat = lazy (Lazy.force Cat.lk)

let run_explained ?(native = false) test =
  if native then
    Exec.Check.run ~explainer:Lkmm.Explain.explainer (module Lkmm) test
  else
    let model = Lazy.force lk_cat in
    Exec.Check.run
      ~explainer:(Cat.Explain.explainer model)
      (Cat.to_check_model ~name:"LK(cat)" model)
      test

(* ------------------------------------------------------------------ *)
(* Goldens                                                             *)
(* ------------------------------------------------------------------ *)

let goldens_dir =
  lazy
    (match
       List.find_opt Sys.file_exists
         [ "goldens"; "test/goldens"; "../../../test/goldens" ]
     with
    | Some d -> d
    | None ->
        (* running from an unexpected cwd: create next to us *)
        "goldens")

let update_goldens =
  match Sys.getenv_opt "UPDATE_GOLDENS" with
  | Some ("" | "0") | None -> false
  | Some _ -> true

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_golden name actual =
  let dir = Lazy.force goldens_dir in
  let path = Filename.concat dir name in
  if update_goldens then begin
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let oc = open_out_bin path in
    output_string oc actual;
    close_out oc
  end
  else if not (Sys.file_exists path) then
    Alcotest.failf "golden %s missing; run UPDATE_GOLDENS=1 dune runtest" path
  else
    Alcotest.(check string) (name ^ " matches golden") (read_file path) actual

let explanation_text test_name =
  let r = run_explained (battery test_name) in
  Alcotest.(check bool)
    (test_name ^ " is forbidden") true
    (r.Exec.Check.verdict = Exec.Check.Forbid);
  Alcotest.(check bool)
    (test_name ^ " has explanations") true
    (r.Exec.Check.explanations <> []);
  String.concat "\n"
    (List.map Exec.Explain.to_string r.Exec.Check.explanations)
  ^ "\n"

let test_golden_mp () =
  check_golden "MP+wmb+rmb.explain.txt" (explanation_text "MP+wmb+rmb")

let test_golden_sb () =
  check_golden "SB+mbs.explain.txt" (explanation_text "SB+mbs")

let test_golden_rcu () =
  check_golden "RCU-MP.explain.txt" (explanation_text "RCU-MP")

(* The DOT rendering of the explained counterexample, overlay included. *)
let test_golden_dot () =
  let r = run_explained (battery "MP+wmb+rmb") in
  match r.Exec.Check.counterexample with
  | None -> Alcotest.fail "no counterexample"
  | Some x ->
      check_golden "MP+wmb+rmb.explain.dot"
        (Exec.Dot.to_string ~explain:r.Exec.Check.explanations x)

let test_dot_escaping () =
  Alcotest.(check string) "escape" {|a\"b\\c\nd|}
    (Exec.Dot.escape "a\"b\\c\nd");
  let dot = Exec.Dot.to_string (battery "SB" |> Exec.of_test |> List.hd) in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 7 && String.sub dot 0 7 = "digraph")

(* ------------------------------------------------------------------ *)
(* Property: every battery explanation re-validates                    *)
(* ------------------------------------------------------------------ *)

(* The engines validate internally (Invalid is a hard error), so this
   re-runs the validation *externally*, with a resolver rebuilt from
   scratch on the counterexample — the report-consumer's view. *)
let test_battery_revalidates () =
  let model = Lazy.force lk_cat in
  let n_explained = ref 0 and n_steps = ref 0 in
  List.iter
    (fun (e : Harness.Battery.entry) ->
      let test = Harness.Battery.test_of e in
      let r = run_explained test in
      match (r.Exec.Check.verdict, r.Exec.Check.counterexample) with
      | Exec.Check.Forbid, Some cex ->
          Alcotest.(check bool)
            (e.Harness.Battery.name ^ ": forbidden verdict is explained")
            true
            (r.Exec.Check.explanations <> []);
          let resolve = Cat.Explain.resolver model cex in
          List.iter
            (fun (ex : Exec.Explain.t) ->
              incr n_explained;
              n_steps := !n_steps + List.length ex.Exec.Explain.steps;
              Exec.Explain.validate ~resolve ex)
            r.Exec.Check.explanations
      | Exec.Check.Forbid, None ->
          (* forbidden with no condition-satisfying candidate at all:
             nothing to explain (e.g. a condition no outcome reaches) *)
          Alcotest.(check (list Alcotest.reject))
            (e.Harness.Battery.name ^ ": no counterexample, no explanations")
            [] r.Exec.Check.explanations
      | _ -> ())
    Harness.Battery.all;
  Alcotest.(check bool) "battery produced explanations" true (!n_explained > 0);
  Alcotest.(check bool) "explanations have steps" true (!n_steps > 0)

(* The native explainer agrees with the cat one on which checks fail,
   and also re-validates. *)
let test_native_explainer () =
  List.iter
    (fun name ->
      let test = battery name in
      let rc = run_explained test and rn = run_explained ~native:true test in
      let names r =
        List.sort_uniq compare
          (List.map
             (fun (e : Exec.Explain.t) -> e.Exec.Explain.check)
             r.Exec.Check.explanations)
      in
      Alcotest.(check (list string))
        (name ^ ": native and cat explainers name the same checks")
        (names rc) (names rn))
    [ "MP+wmb+rmb"; "SB+mbs"; "RCU-MP"; "SB"; "MP" ]

(* ------------------------------------------------------------------ *)
(* Validator tamper detection                                          *)
(* ------------------------------------------------------------------ *)

let some_explanation () =
  let r = run_explained (battery "SB+mbs") in
  match (r.Exec.Check.explanations, r.Exec.Check.counterexample) with
  | e :: _, Some cex -> (e, cex)
  | _ -> Alcotest.fail "SB+mbs produced no explanation"

let test_validator_rejects_tampering () =
  let e, cex = some_explanation () in
  let resolve = Cat.Explain.resolver (Lazy.force lk_cat) cex in
  (* untampered passes *)
  Exec.Explain.validate ~resolve e;
  let tampered =
    match e.Exec.Explain.steps with
    | (s : Exec.Explain.step) :: rest ->
        { e with Exec.Explain.steps = { s with Exec.Explain.src = s.Exec.Explain.src + 1 } :: rest }
    | [] -> Alcotest.fail "explanation has no steps"
  in
  Alcotest.check_raises "shifted edge is rejected"
    (Exec.Explain.Invalid "")
    (fun () ->
      try Exec.Explain.validate ~resolve tampered
      with Exec.Explain.Invalid _ -> raise (Exec.Explain.Invalid ""));
  let relabelled =
    match e.Exec.Explain.steps with
    | s :: rest ->
        {
          e with
          Exec.Explain.steps =
            { s with Exec.Explain.prims = [ { Exec.Explain.p_src = s.Exec.Explain.src; p_dst = s.Exec.Explain.dst; p_label = "rmw" } ] }
            :: rest;
        }
    | [] -> assert false
  in
  (* relabelling a cycle edge as rmw: no SB edge is an rmw edge *)
  Alcotest.check_raises "false relation label is rejected"
    (Exec.Explain.Invalid "")
    (fun () ->
      try Exec.Explain.validate ~resolve relabelled
      with Exec.Explain.Invalid _ -> raise (Exec.Explain.Invalid ""))

(* ------------------------------------------------------------------ *)
(* Check plumbing                                                      *)
(* ------------------------------------------------------------------ *)

(* No explainer: result must carry no forensics, and an Allow verdict
   must carry none even with an explainer. *)
let test_check_plumbing () =
  let forbidden = battery "SB+mbs" in
  let r = Exec.Check.run (module Lkmm) forbidden in
  Alcotest.(check bool) "no explainer, no explanations" true
    (r.Exec.Check.explanations = [] && r.Exec.Check.counterexample = None);
  let allowed = battery "SB" in
  let r = run_explained allowed in
  Alcotest.(check bool) "allow verdict carries no explanations" true
    (r.Exec.Check.verdict = Exec.Check.Allow
    && r.Exec.Check.explanations = []
    && r.Exec.Check.counterexample = None)

(* The explained counterexample satisfies the condition and is rejected
   by the model — the execution the diagrams should draw. *)
let test_counterexample_shape () =
  let r = run_explained (battery "MP+wmb+rmb") in
  match r.Exec.Check.counterexample with
  | None -> Alcotest.fail "no counterexample"
  | Some x ->
      Alcotest.(check bool) "counterexample matches the condition" true
        (Exec.satisfies_cond x);
      Alcotest.(check bool) "counterexample is inconsistent" true
        (not (Lkmm.consistent x))

(* JSON of an explanation round-trips through the shared JSON parser. *)
let test_json_shape () =
  let e, _ = some_explanation () in
  let module J = Harness.Journal.Json in
  match J.of_string (Exec.Explain.to_json e) with
  | exception J.Malformed m -> Alcotest.failf "malformed JSON: %s" m
  | j ->
      let field k = Option.get (J.mem k j) in
      Alcotest.(check bool) "check name" true
        (J.str (field "check") = Some e.Exec.Explain.check);
      let steps = match field "steps" with J.Arr l -> l | _ -> [] in
      Alcotest.(check int) "steps arity"
        (List.length e.Exec.Explain.steps)
        (List.length steps);
      let events = match field "events" with J.Arr l -> l | _ -> [] in
      Alcotest.(check bool) "events present" true (events <> [])

let () =
  Alcotest.run "explain"
    [
      ( "goldens",
        [
          Alcotest.test_case "MP+wmb+rmb text" `Quick test_golden_mp;
          Alcotest.test_case "SB+mbs text" `Quick test_golden_sb;
          Alcotest.test_case "RCU-MP text" `Quick test_golden_rcu;
          Alcotest.test_case "MP+wmb+rmb dot" `Quick test_golden_dot;
        ] );
      ( "dot",
        [ Alcotest.test_case "label escaping" `Quick test_dot_escaping ] );
      ( "property",
        [
          Alcotest.test_case "battery re-validates" `Quick
            test_battery_revalidates;
          Alcotest.test_case "native explainer agrees" `Quick
            test_native_explainer;
        ] );
      ( "validator",
        [
          Alcotest.test_case "tamper detection" `Quick
            test_validator_rejects_tampering;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "check result" `Quick test_check_plumbing;
          Alcotest.test_case "counterexample shape" `Quick
            test_counterexample_shape;
          Alcotest.test_case "json shape" `Quick test_json_shape;
        ] );
    ]
