(* Tests for the observability layer: collector semantics (nesting,
   exception safety, ring overflow, fork-style merge), the structural
   golden shape of the JSONL and Chrome exports on a fixed battery
   test (spans well-nested, counters agreeing with the check result),
   and a -j 2 pool run merging every worker's spans into the parent
   collector. *)

let with_collector f =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Collector semantics                                                 *)
(* ------------------------------------------------------------------ *)

let test_nesting () =
  with_collector @@ fun () ->
  let r =
    Obs.with_span "outer" (fun () ->
        Obs.with_span ~item:"t" "inner" (fun () -> 7))
  in
  Alcotest.(check int) "result threaded through" 7 r;
  match Obs.spans () with
  | [ outer; inner ] ->
      Alcotest.(check string) "outer name" "outer" outer.Obs.name;
      Alcotest.(check string) "inner name" "inner" inner.Obs.name;
      Alcotest.(check int) "inner parent is outer" outer.Obs.id
        inner.Obs.parent;
      Alcotest.(check int) "outer is a root" (-1) outer.Obs.parent;
      Alcotest.(check bool) "inner starts after outer" true
        (inner.Obs.start_us >= outer.Obs.start_us);
      Alcotest.(check bool) "inner ends before outer" true
        (inner.Obs.start_us +. inner.Obs.dur_us
        <= outer.Obs.start_us +. outer.Obs.dur_us +. 1e-6)
  | spans ->
      Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_exception_safety () =
  with_collector @@ fun () ->
  (try Obs.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  match Obs.spans () with
  | [ s ] ->
      Alcotest.(check string) "span closed" "boom" s.Obs.name;
      Alcotest.(check bool) "duration recorded" true (s.Obs.dur_us >= 0.);
      (* the open-span stack must be back to empty: a sibling recorded
         after the exception is a root, not a child of "boom" *)
      Obs.with_span "after" (fun () -> ());
      let after = List.nth (Obs.spans ()) 1 in
      Alcotest.(check int) "stack unwound" (-1) after.Obs.parent
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

let test_disabled_noop () =
  Obs.reset ();
  Obs.set_enabled false;
  let c = Obs.Counter.make "test.disabled" in
  Obs.Counter.add c 5;
  let r = Obs.with_span "off" (fun () -> 3) in
  Alcotest.(check int) "function still runs" 3 r;
  Alcotest.(check int) "no spans recorded" 0 (List.length (Obs.spans ()));
  Alcotest.(check int) "counter untouched" 0 (Obs.Counter.value c)

let test_ring_overflow () =
  with_collector @@ fun () ->
  let n = 65536 + 100 in
  for _ = 1 to n do
    Obs.with_span "tick" (fun () -> ())
  done;
  Alcotest.(check int) "ring keeps capacity" 65536
    (List.length (Obs.spans ()));
  Alcotest.(check int) "overflow counted" 100 (Obs.dropped ())

let test_merge () =
  with_collector @@ fun () ->
  (* a "worker": records one span and a counter, then dumps *)
  Obs.with_span "work" (fun () -> Obs.Counter.incr (Obs.Counter.make "m.c"));
  let d = Obs.dump () in
  Obs.reset ();
  Obs.with_span "parent" (fun () -> ());
  Obs.merge ~tid:41 d;
  Obs.merge ~tid:42 d;
  let spans = Obs.spans () in
  Alcotest.(check int) "parent + two merged copies" 3 (List.length spans);
  let tids =
    List.filter_map
      (fun s -> if s.Obs.name = "work" then Some s.Obs.tid else None)
      spans
  in
  Alcotest.(check (list int)) "merged spans keep worker tids" [ 41; 42 ]
    (List.sort compare tids);
  Alcotest.(check int) "counters summed" 2
    (Obs.Counter.value (Obs.Counter.make "m.c"))

(* ------------------------------------------------------------------ *)
(* Structural golden test on a fixed battery test                      *)
(* ------------------------------------------------------------------ *)

module J = Harness.Journal.Json

let sfield j k = Option.bind (J.mem k j) J.str
let nfield j k = Option.bind (J.mem k j) J.num

let run_fixed () =
  let e = Harness.Battery.find "MP+wmb+rmb" in
  let report =
    Harness.Runner.run
      ~oracle:Lkmm.oracle
      [
        {
          Harness.Runner.id = e.Harness.Battery.name;
          source = `Text e.Harness.Battery.source;
          expected = None;
        };
      ]
  in
  List.hd report.Harness.Runner.entries

let test_counters_match_result () =
  with_collector @@ fun () ->
  let entry = run_fixed () in
  let r = Option.get entry.Harness.Runner.result in
  let counter name =
    match List.assoc_opt name (Obs.counters ()) with Some v -> v | None -> 0
  in
  Alcotest.(check int) "check.candidates = n_candidates"
    r.Exec.Check.n_candidates
    (counter "check.candidates");
  Alcotest.(check int) "check.prefiltered = n_prefiltered"
    r.Exec.Check.n_prefiltered
    (counter "check.prefiltered");
  Alcotest.(check int) "check.consistent = n_consistent"
    r.Exec.Check.n_consistent
    (counter "check.consistent");
  Alcotest.(check bool) "relation kernel touched words" true
    (counter "rel.words" > 0)

let test_spans_well_nested () =
  with_collector @@ fun () ->
  ignore (run_fixed ());
  let spans = Obs.spans () in
  let by_id = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace by_id s.Obs.id s) spans;
  let names = List.map (fun s -> s.Obs.name) spans in
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (Printf.sprintf "span %s present" expected)
        true (List.mem expected names))
    [ "item"; "parse"; "lint"; "check"; "enumerate"; "sem" ];
  List.iter
    (fun s ->
      if s.Obs.parent >= 0 then
        match Hashtbl.find_opt by_id s.Obs.parent with
        | None -> Alcotest.failf "span %s has a dangling parent" s.Obs.name
        | Some p ->
            Alcotest.(check bool)
              (Printf.sprintf "%s nested in %s" s.Obs.name p.Obs.name)
              true
              (s.Obs.start_us >= p.Obs.start_us -. 1e-6
              && s.Obs.start_us +. s.Obs.dur_us
                 <= p.Obs.start_us +. p.Obs.dur_us +. 1e-6))
    spans

let test_jsonl_shape () =
  with_collector @@ fun () ->
  ignore (run_fixed ());
  let lines =
    Obs.to_jsonl () |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check bool) "several lines" true (List.length lines > 5);
  let parsed = List.map J.of_string lines in
  (* every line is typed; the first is the meta line *)
  List.iter
    (fun j ->
      match sfield j "type" with
      | Some ("meta" | "span" | "counter" | "hist") -> ()
      | t ->
          Alcotest.failf "bad line type %s"
            (Option.value ~default:"<none>" t))
    parsed;
  (match parsed with
  | meta :: _ ->
      Alcotest.(check (option string)) "schema tag" (Some "obs-1")
        (sfield meta "schema")
  | [] -> Alcotest.fail "no meta line");
  (* the candidate counter round-trips through the JSONL *)
  let candidates =
    List.find_map
      (fun j ->
        if
          sfield j "type" = Some "counter"
          && sfield j "name" = Some "check.candidates"
        then nfield j "value"
        else None)
      parsed
  in
  Alcotest.(check bool) "candidates counter exported" true
    (match candidates with Some v -> v > 0. | None -> false)

let test_chrome_shape () =
  with_collector @@ fun () ->
  ignore (run_fixed ());
  let doc = J.of_string (Obs.to_chrome ()) in
  let events =
    match J.mem "traceEvents" doc with
    | Some (J.Arr evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  Alcotest.(check bool) "events present" true (events <> []);
  List.iter
    (fun ev ->
      (match sfield ev "ph" with
      | Some ("X" | "C") -> ()
      | ph ->
          Alcotest.failf "bad phase %s" (Option.value ~default:"<none>" ph));
      Alcotest.(check bool) "name present" true (sfield ev "name" <> None);
      Alcotest.(check bool) "ts present" true (nfield ev "ts" <> None))
    events

(* ------------------------------------------------------------------ *)
(* Telemetry surfaces: explicit spans, quantiles, the flight recorder  *)
(* ------------------------------------------------------------------ *)

let test_record_and_event () =
  with_collector @@ fun () ->
  Obs.record ~item:"r1" ~tid:77 ~start_us:100. ~dur_us:50. "manual";
  Obs.event ~item:"retrying" "serve.retry";
  (match Obs.spans () with
  | [ manual; ev ] ->
      Alcotest.(check string) "record name" "manual" manual.Obs.name;
      Alcotest.(check string) "record item" "r1" manual.Obs.item;
      Alcotest.(check int) "record keeps the explicit tid" 77 manual.Obs.tid;
      Alcotest.(check (float 1e-6)) "record start" 100. manual.Obs.start_us;
      Alcotest.(check (float 1e-6)) "record duration" 50. manual.Obs.dur_us;
      Alcotest.(check int) "record is a root" (-1) manual.Obs.parent;
      Alcotest.(check string) "event name" "serve.retry" ev.Obs.name;
      Alcotest.(check (float 1e-6)) "event has zero duration" 0. ev.Obs.dur_us
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans));
  (* neither touched the nesting stack: the next span is still a root *)
  Obs.with_span "after" (fun () -> ());
  let after = List.nth (Obs.spans ()) 2 in
  Alcotest.(check int) "stacks untouched" (-1) after.Obs.parent

let test_quantiles () =
  Obs.reset ();
  Obs.set_enabled false;
  Fun.protect ~finally:Obs.reset @@ fun () ->
  let h = Obs.Histogram.make "test.quantiles" in
  (* observe_always accumulates with the collector off: the always-on
     service histograms (latency, queue wait) depend on this *)
  for i = 1 to 1000 do
    Obs.Histogram.observe_always h (float_of_int i)
  done;
  let s = Obs.hist_snapshot h in
  Alcotest.(check int) "count" 1000 s.Obs.h_count;
  let p50 = Obs.quantile s 0.5
  and p95 = Obs.quantile s 0.95
  and p99 = Obs.quantile s 0.99 in
  Alcotest.(check bool) "quantiles monotone" true (p50 <= p95 && p95 <= p99);
  Alcotest.(check bool) "p50 inside the observed range" true
    (p50 >= s.Obs.h_min && p50 <= s.Obs.h_max);
  Alcotest.(check bool) "p99 clamped to the observed max" true
    (p99 <= s.Obs.h_max +. 1e-6);
  Alcotest.(check (float 1e-6)) "empty histogram quantile is 0" 0.
    (Obs.quantile (Obs.hist_snapshot (Obs.Histogram.make "test.empty")) 0.5);
  (* the metrics-snapshot object is valid JSON with every member *)
  let j = J.of_string (Obs.hist_metrics_json s) in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " present") true (nfield j k <> None))
    [ "count"; "p50"; "p95"; "p99"; "max"; "mean" ];
  Alcotest.(check (option (float 0.5))) "count member" (Some 1000.)
    (nfield j "count")

let test_flight_recorder () =
  with_collector @@ fun () ->
  let path = Filename.temp_file "obs_flight" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      if Obs.flight_active () then Obs.flight_stop ();
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Obs.flight_start ~interval_us:1e12 ~last:4 path;
      Alcotest.(check bool) "armed" true (Obs.flight_active ());
      Obs.Counter.add (Obs.Counter.make "flight.work") 3;
      Obs.with_span ~item:"victim-item" "job" (fun () ->
          Obs.flight_checkpoint ~reason:"job-start" ());
      Obs.flight_stop ();
      Alcotest.(check bool) "disarmed" false (Obs.flight_active ());
      let lines = Harness.Journal.load_json path in
      Alcotest.(check int) "job-start and stop checkpoints" 2
        (List.length lines);
      let ckpt = List.hd lines in
      Alcotest.(check (option string)) "schema" (Some "lkflight-1")
        (sfield ckpt "schema");
      Alcotest.(check (option (float 0.5))) "pid"
        (Some (float_of_int (Unix.getpid ())))
        (nfield ckpt "pid");
      Alcotest.(check (option string)) "reason" (Some "job-start")
        (sfield ckpt "reason");
      (* the span open at checkpoint time is flagged, with its item *)
      let spans =
        match J.mem "spans" ckpt with
        | Some (J.Arr l) -> l
        | _ -> Alcotest.fail "no spans array"
      in
      let open_spans =
        List.filter
          (fun s -> Option.bind (J.mem "open" s) J.bool_ = Some true)
          spans
      in
      (match open_spans with
      | [ s ] ->
          Alcotest.(check (option string)) "open span is the job" (Some "job")
            (sfield s "name");
          Alcotest.(check (option string)) "victim named" (Some "victim-item")
            (sfield s "item")
      | l -> Alcotest.failf "expected 1 open span, got %d" (List.length l));
      (* counters ride along *)
      let counters =
        match J.mem "counters" ckpt with
        | Some c -> c
        | None -> Alcotest.fail "no counters object"
      in
      Alcotest.(check (option (float 0.5))) "counter at death" (Some 3.)
        (nfield counters "flight.work");
      (* re-arming appends: a restart cannot erase the first life *)
      Obs.flight_start ~interval_us:1e12 path;
      Obs.flight_checkpoint ~reason:"second-life" ();
      Obs.flight_stop ();
      let lives = Harness.Journal.load_json path in
      Alcotest.(check int) "both lives on disk" 4 (List.length lives);
      Alcotest.(check (option string)) "first life intact"
        (Some "job-start")
        (sfield (List.hd lives) "reason"))

let test_concurrent_domains_chrome () =
  with_collector @@ fun () ->
  let worker i () =
    for _ = 1 to 50 do
      Obs.with_span ~item:(string_of_int i) "domain.outer" (fun () ->
          Obs.with_span "domain.inner" (fun () -> ()))
    done
  in
  let ds = List.init 3 (fun i -> Domain.spawn (worker (i + 1))) in
  List.iter Domain.join ds;
  let spans = Obs.spans () in
  Alcotest.(check int) "all spans recorded" 300 (List.length spans);
  let tids = List.sort_uniq compare (List.map (fun s -> s.Obs.tid) spans) in
  Alcotest.(check int) "one tid per domain" 3 (List.length tids);
  (* nesting holds per domain even under interleaved recording *)
  let by_id = Hashtbl.create 256 in
  List.iter (fun s -> Hashtbl.replace by_id s.Obs.id s) spans;
  List.iter
    (fun s ->
      if s.Obs.name = "domain.inner" then
        match Hashtbl.find_opt by_id s.Obs.parent with
        | None -> Alcotest.fail "inner span with a dangling parent"
        | Some p ->
            Alcotest.(check string) "parent is the outer span" "domain.outer"
              p.Obs.name;
            Alcotest.(check int) "parent on the same domain" s.Obs.tid
              p.Obs.tid)
    spans;
  (* and the merged Chrome export stays schema-valid: X/C phases only *)
  let doc = J.of_string (Obs.to_chrome ()) in
  let events =
    match J.mem "traceEvents" doc with
    | Some (J.Arr evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  Alcotest.(check bool) "events exported" true (List.length events >= 300);
  List.iter
    (fun ev ->
      match sfield ev "ph" with
      | Some ("X" | "C") -> ()
      | ph ->
          Alcotest.failf "bad phase %s" (Option.value ~default:"<none>" ph))
    events

(* ------------------------------------------------------------------ *)
(* Fork-boundary aggregation through the pool                          *)
(* ------------------------------------------------------------------ *)

let test_pool_merges_workers () =
  with_collector @@ fun () ->
  let items =
    List.map
      (fun name ->
        let e = Harness.Battery.find name in
        {
          Harness.Runner.id = name;
          source = `Text e.Harness.Battery.source;
          expected = None;
        })
      [ "MP+wmb+rmb"; "SB" ]
  in
  let config = { Harness.Pool.default with Harness.Pool.jobs = 2 } in
  let report =
    Harness.Pool.run ~config
      ~oracle:Lkmm.oracle
      items
  in
  Alcotest.(check int) "both items pass" 2 report.Harness.Runner.n_pass;
  let spans = Obs.spans () in
  Alcotest.(check bool) "parent pool span present" true
    (List.exists (fun s -> s.Obs.name = "pool") spans);
  (* each item ran in its own forked worker; its spans merge back tagged
     with that worker's pid *)
  let item_tids =
    List.filter_map
      (fun s -> if s.Obs.name = "item" then Some s.Obs.tid else None)
      spans
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "one worker tid per item" 2 (List.length item_tids);
  List.iter
    (fun tid ->
      Alcotest.(check bool) "worker tid is a pid" true (tid > 0))
    item_tids;
  (* worker counters survive the pipe: the merged collector saw every
     candidate both workers enumerated *)
  let merged =
    match List.assoc_opt "check.candidates" (Obs.counters ()) with
    | Some v -> v
    | None -> 0
  in
  let expected =
    List.fold_left
      (fun acc (e : Harness.Runner.entry) ->
        acc + e.Harness.Runner.n_candidates)
      0 report.Harness.Runner.entries
  in
  Alcotest.(check int) "worker candidate counters merged" expected merged

(* A pool worker SIGKILLed mid-item forfeits its result-pipe dump; the
   flight recorder's item-start checkpoint is the only evidence left.
   The injected worker kills itself the way the watchdog would. *)
let test_pool_flight_postmortem () =
  let dir = Filename.temp_file "obs_pool_flight" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      let e = Harness.Battery.find "SB" in
      let items =
        [
          {
            Harness.Runner.id = "SB";
            source = `Text e.Harness.Battery.source;
            expected = None;
          };
        ]
      in
      let config =
        {
          Harness.Pool.default with
          Harness.Pool.jobs = 1;
          retries = 0;
          flight_dir = Some dir;
        }
      in
      let crashing _item =
        Unix.kill (Unix.getpid ()) Sys.sigkill;
        assert false
      in
      let report = Harness.Pool.run ~config ~worker:crashing items in
      Alcotest.(check int) "crash classified" 1 report.Harness.Runner.n_crash;
      (* the dead worker left a readable post-mortem naming its item *)
      let victims =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f ->
               String.length f > 7 && String.sub f 0 7 = "flight-")
        |> List.concat_map (fun f ->
               Harness.Journal.load_json (Filename.concat dir f))
        |> List.concat_map (fun ckpt ->
               match J.mem "spans" ckpt with
               | Some (J.Arr spans) ->
                   List.filter_map (fun s -> sfield s "item") spans
               | _ -> [])
      in
      Alcotest.(check bool) "post-mortem names the victim item" true
        (List.mem "SB" victims))

let test_report_metrics_object () =
  with_collector @@ fun () ->
  let entry = run_fixed () in
  let report =
    Harness.Report.summarise ~wall:entry.Harness.Runner.time [ entry ]
  in
  let doc = J.of_string (Harness.Report.to_json report) in
  Alcotest.(check (option (float 0.0))) "schema version 4" (Some 4.)
    (Option.bind (J.mem "schema_version" doc) J.num);
  match J.mem "metrics" doc with
  | Some (J.Obj _) -> ()
  | _ -> Alcotest.fail "metrics object missing from enabled-collector report"

let () =
  Alcotest.run "obs"
    [
      ( "collector",
        [
          Alcotest.test_case "nesting" `Quick test_nesting;
          Alcotest.test_case "exception safety" `Quick test_exception_safety;
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
          Alcotest.test_case "ring overflow" `Quick test_ring_overflow;
          Alcotest.test_case "merge" `Quick test_merge;
        ] );
      ( "golden",
        [
          Alcotest.test_case "counters match result" `Quick
            test_counters_match_result;
          Alcotest.test_case "spans well-nested" `Quick test_spans_well_nested;
          Alcotest.test_case "jsonl shape" `Quick test_jsonl_shape;
          Alcotest.test_case "chrome shape" `Quick test_chrome_shape;
          Alcotest.test_case "report metrics object" `Quick
            test_report_metrics_object;
        ] );
      ( "pool",
        [
          Alcotest.test_case "merges worker collectors" `Quick
            test_pool_merges_workers;
          Alcotest.test_case "flight post-mortem survives SIGKILL" `Quick
            test_pool_flight_postmortem;
        ] );
      (* last: Unix.fork is forbidden once another domain has existed,
         so the domain-spawning test must follow every forking one *)
      ( "telemetry",
        [
          Alcotest.test_case "record and event" `Quick test_record_and_event;
          Alcotest.test_case "quantiles and metrics object" `Quick
            test_quantiles;
          Alcotest.test_case "flight recorder round-trip" `Quick
            test_flight_recorder;
          Alcotest.test_case "chrome export across domains" `Quick
            test_concurrent_domains_chrome;
        ] );
    ]
