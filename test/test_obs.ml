(* Tests for the observability layer: collector semantics (nesting,
   exception safety, ring overflow, fork-style merge), the structural
   golden shape of the JSONL and Chrome exports on a fixed battery
   test (spans well-nested, counters agreeing with the check result),
   and a -j 2 pool run merging every worker's spans into the parent
   collector. *)

let with_collector f =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Collector semantics                                                 *)
(* ------------------------------------------------------------------ *)

let test_nesting () =
  with_collector @@ fun () ->
  let r =
    Obs.with_span "outer" (fun () ->
        Obs.with_span ~item:"t" "inner" (fun () -> 7))
  in
  Alcotest.(check int) "result threaded through" 7 r;
  match Obs.spans () with
  | [ outer; inner ] ->
      Alcotest.(check string) "outer name" "outer" outer.Obs.name;
      Alcotest.(check string) "inner name" "inner" inner.Obs.name;
      Alcotest.(check int) "inner parent is outer" outer.Obs.id
        inner.Obs.parent;
      Alcotest.(check int) "outer is a root" (-1) outer.Obs.parent;
      Alcotest.(check bool) "inner starts after outer" true
        (inner.Obs.start_us >= outer.Obs.start_us);
      Alcotest.(check bool) "inner ends before outer" true
        (inner.Obs.start_us +. inner.Obs.dur_us
        <= outer.Obs.start_us +. outer.Obs.dur_us +. 1e-6)
  | spans ->
      Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_exception_safety () =
  with_collector @@ fun () ->
  (try Obs.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  match Obs.spans () with
  | [ s ] ->
      Alcotest.(check string) "span closed" "boom" s.Obs.name;
      Alcotest.(check bool) "duration recorded" true (s.Obs.dur_us >= 0.);
      (* the open-span stack must be back to empty: a sibling recorded
         after the exception is a root, not a child of "boom" *)
      Obs.with_span "after" (fun () -> ());
      let after = List.nth (Obs.spans ()) 1 in
      Alcotest.(check int) "stack unwound" (-1) after.Obs.parent
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

let test_disabled_noop () =
  Obs.reset ();
  Obs.set_enabled false;
  let c = Obs.Counter.make "test.disabled" in
  Obs.Counter.add c 5;
  let r = Obs.with_span "off" (fun () -> 3) in
  Alcotest.(check int) "function still runs" 3 r;
  Alcotest.(check int) "no spans recorded" 0 (List.length (Obs.spans ()));
  Alcotest.(check int) "counter untouched" 0 (Obs.Counter.value c)

let test_ring_overflow () =
  with_collector @@ fun () ->
  let n = 65536 + 100 in
  for _ = 1 to n do
    Obs.with_span "tick" (fun () -> ())
  done;
  Alcotest.(check int) "ring keeps capacity" 65536
    (List.length (Obs.spans ()));
  Alcotest.(check int) "overflow counted" 100 (Obs.dropped ())

let test_merge () =
  with_collector @@ fun () ->
  (* a "worker": records one span and a counter, then dumps *)
  Obs.with_span "work" (fun () -> Obs.Counter.incr (Obs.Counter.make "m.c"));
  let d = Obs.dump () in
  Obs.reset ();
  Obs.with_span "parent" (fun () -> ());
  Obs.merge ~tid:41 d;
  Obs.merge ~tid:42 d;
  let spans = Obs.spans () in
  Alcotest.(check int) "parent + two merged copies" 3 (List.length spans);
  let tids =
    List.filter_map
      (fun s -> if s.Obs.name = "work" then Some s.Obs.tid else None)
      spans
  in
  Alcotest.(check (list int)) "merged spans keep worker tids" [ 41; 42 ]
    (List.sort compare tids);
  Alcotest.(check int) "counters summed" 2
    (Obs.Counter.value (Obs.Counter.make "m.c"))

(* ------------------------------------------------------------------ *)
(* Structural golden test on a fixed battery test                      *)
(* ------------------------------------------------------------------ *)

module J = Harness.Journal.Json

let sfield j k = Option.bind (J.mem k j) J.str
let nfield j k = Option.bind (J.mem k j) J.num

let run_fixed () =
  let e = Harness.Battery.find "MP+wmb+rmb" in
  let report =
    Harness.Runner.run
      ~oracle:Lkmm.oracle
      [
        {
          Harness.Runner.id = e.Harness.Battery.name;
          source = `Text e.Harness.Battery.source;
          expected = None;
        };
      ]
  in
  List.hd report.Harness.Runner.entries

let test_counters_match_result () =
  with_collector @@ fun () ->
  let entry = run_fixed () in
  let r = Option.get entry.Harness.Runner.result in
  let counter name =
    match List.assoc_opt name (Obs.counters ()) with Some v -> v | None -> 0
  in
  Alcotest.(check int) "check.candidates = n_candidates"
    r.Exec.Check.n_candidates
    (counter "check.candidates");
  Alcotest.(check int) "check.prefiltered = n_prefiltered"
    r.Exec.Check.n_prefiltered
    (counter "check.prefiltered");
  Alcotest.(check int) "check.consistent = n_consistent"
    r.Exec.Check.n_consistent
    (counter "check.consistent");
  Alcotest.(check bool) "relation kernel touched words" true
    (counter "rel.words" > 0)

let test_spans_well_nested () =
  with_collector @@ fun () ->
  ignore (run_fixed ());
  let spans = Obs.spans () in
  let by_id = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace by_id s.Obs.id s) spans;
  let names = List.map (fun s -> s.Obs.name) spans in
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (Printf.sprintf "span %s present" expected)
        true (List.mem expected names))
    [ "item"; "parse"; "lint"; "check"; "enumerate"; "sem" ];
  List.iter
    (fun s ->
      if s.Obs.parent >= 0 then
        match Hashtbl.find_opt by_id s.Obs.parent with
        | None -> Alcotest.failf "span %s has a dangling parent" s.Obs.name
        | Some p ->
            Alcotest.(check bool)
              (Printf.sprintf "%s nested in %s" s.Obs.name p.Obs.name)
              true
              (s.Obs.start_us >= p.Obs.start_us -. 1e-6
              && s.Obs.start_us +. s.Obs.dur_us
                 <= p.Obs.start_us +. p.Obs.dur_us +. 1e-6))
    spans

let test_jsonl_shape () =
  with_collector @@ fun () ->
  ignore (run_fixed ());
  let lines =
    Obs.to_jsonl () |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check bool) "several lines" true (List.length lines > 5);
  let parsed = List.map J.of_string lines in
  (* every line is typed; the first is the meta line *)
  List.iter
    (fun j ->
      match sfield j "type" with
      | Some ("meta" | "span" | "counter" | "hist") -> ()
      | t ->
          Alcotest.failf "bad line type %s"
            (Option.value ~default:"<none>" t))
    parsed;
  (match parsed with
  | meta :: _ ->
      Alcotest.(check (option string)) "schema tag" (Some "obs-1")
        (sfield meta "schema")
  | [] -> Alcotest.fail "no meta line");
  (* the candidate counter round-trips through the JSONL *)
  let candidates =
    List.find_map
      (fun j ->
        if
          sfield j "type" = Some "counter"
          && sfield j "name" = Some "check.candidates"
        then nfield j "value"
        else None)
      parsed
  in
  Alcotest.(check bool) "candidates counter exported" true
    (match candidates with Some v -> v > 0. | None -> false)

let test_chrome_shape () =
  with_collector @@ fun () ->
  ignore (run_fixed ());
  let doc = J.of_string (Obs.to_chrome ()) in
  let events =
    match J.mem "traceEvents" doc with
    | Some (J.Arr evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  Alcotest.(check bool) "events present" true (events <> []);
  List.iter
    (fun ev ->
      (match sfield ev "ph" with
      | Some ("X" | "C") -> ()
      | ph ->
          Alcotest.failf "bad phase %s" (Option.value ~default:"<none>" ph));
      Alcotest.(check bool) "name present" true (sfield ev "name" <> None);
      Alcotest.(check bool) "ts present" true (nfield ev "ts" <> None))
    events

(* ------------------------------------------------------------------ *)
(* Fork-boundary aggregation through the pool                          *)
(* ------------------------------------------------------------------ *)

let test_pool_merges_workers () =
  with_collector @@ fun () ->
  let items =
    List.map
      (fun name ->
        let e = Harness.Battery.find name in
        {
          Harness.Runner.id = name;
          source = `Text e.Harness.Battery.source;
          expected = None;
        })
      [ "MP+wmb+rmb"; "SB" ]
  in
  let config = { Harness.Pool.default with Harness.Pool.jobs = 2 } in
  let report =
    Harness.Pool.run ~config
      ~oracle:Lkmm.oracle
      items
  in
  Alcotest.(check int) "both items pass" 2 report.Harness.Runner.n_pass;
  let spans = Obs.spans () in
  Alcotest.(check bool) "parent pool span present" true
    (List.exists (fun s -> s.Obs.name = "pool") spans);
  (* each item ran in its own forked worker; its spans merge back tagged
     with that worker's pid *)
  let item_tids =
    List.filter_map
      (fun s -> if s.Obs.name = "item" then Some s.Obs.tid else None)
      spans
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "one worker tid per item" 2 (List.length item_tids);
  List.iter
    (fun tid ->
      Alcotest.(check bool) "worker tid is a pid" true (tid > 0))
    item_tids;
  (* worker counters survive the pipe: the merged collector saw every
     candidate both workers enumerated *)
  let merged =
    match List.assoc_opt "check.candidates" (Obs.counters ()) with
    | Some v -> v
    | None -> 0
  in
  let expected =
    List.fold_left
      (fun acc (e : Harness.Runner.entry) ->
        acc + e.Harness.Runner.n_candidates)
      0 report.Harness.Runner.entries
  in
  Alcotest.(check int) "worker candidate counters merged" expected merged

let test_report_metrics_object () =
  with_collector @@ fun () ->
  let entry = run_fixed () in
  let report =
    Harness.Report.summarise ~wall:entry.Harness.Runner.time [ entry ]
  in
  let doc = J.of_string (Harness.Report.to_json report) in
  Alcotest.(check (option (float 0.0))) "schema version 4" (Some 4.)
    (Option.bind (J.mem "schema_version" doc) J.num);
  match J.mem "metrics" doc with
  | Some (J.Obj _) -> ()
  | _ -> Alcotest.fail "metrics object missing from enabled-collector report"

let () =
  Alcotest.run "obs"
    [
      ( "collector",
        [
          Alcotest.test_case "nesting" `Quick test_nesting;
          Alcotest.test_case "exception safety" `Quick test_exception_safety;
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
          Alcotest.test_case "ring overflow" `Quick test_ring_overflow;
          Alcotest.test_case "merge" `Quick test_merge;
        ] );
      ( "golden",
        [
          Alcotest.test_case "counters match result" `Quick
            test_counters_match_result;
          Alcotest.test_case "spans well-nested" `Quick test_spans_well_nested;
          Alcotest.test_case "jsonl shape" `Quick test_jsonl_shape;
          Alcotest.test_case "chrome shape" `Quick test_chrome_shape;
          Alcotest.test_case "report metrics object" `Quick
            test_report_metrics_object;
        ] );
      ( "pool",
        [
          Alcotest.test_case "merges worker collectors" `Quick
            test_pool_merges_workers;
        ] );
    ]
