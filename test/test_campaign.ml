(* Tests for Harness.Campaign and Harness.Manifest: the campaign
   orchestrator must survive a kill -9 at *every* byte offset of its
   manifest journal — resuming from any truncated prefix must converge
   to a mined report byte-identical to an uninterrupted run's — and the
   failure ladder must narrow injected poison down to quarantined
   singleton shards without disturbing any other verdict.  Also here:
   the verdict cache's startup compaction (shares the journal
   machinery). *)

module M = Harness.Manifest
module C = Harness.Campaign
module J = Harness.Journal

let tmpdir () =
  let d = Filename.temp_file "campaign_test" "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* A deliberately tiny campaign: 3 shards, native model only, pure
   candidate/event budgets — fast enough to resume hundreds of times,
   deterministic enough that every resume must agree to the byte. *)
let config ?(seeds = (0, 12)) ?(shard = 4) ?(models = [ "lk" ]) ?(jobs = 2)
    ?(poison = []) ?(wedge = []) ?(lease = 60.) dir =
  {
    C.default with
    C.dir;
    size = 4;
    seed_lo = fst seeds;
    seed_hi = snd seeds;
    shard_size = shard;
    jobs;
    models;
    limits = Exec.Budget.limits ~max_events:128 ~max_candidates:10_000 ();
    reduced = Exec.Budget.limits ~max_events:64 ~max_candidates:1_000 ();
    lease_timeout = lease;
    poison;
    wedge;
    log = ignore;
  }

let run_json cfg =
  match C.run cfg with
  | Ok rep -> C.report_to_json rep
  | Error e -> Alcotest.failf "campaign run: %s" e

(* ------------------------------------------------------------------ *)
(* Manifest                                                            *)
(* ------------------------------------------------------------------ *)

let test_manifest_roundtrip () =
  let dir = tmpdir () in
  let path = Filename.concat dir "m.jsonl" in
  let spec = { M.size = 4; seed_lo = 0; seed_hi = 10; shard_size = 4 } in
  let m = M.create path spec in
  Alcotest.(check int) "initial shards" 3 (List.length (M.shards m));
  M.record m (M.Lease { lo = 0; hi = 4; attempt = 1; pid = 42; since = 1. });
  M.record m (M.Requeue { lo = 0; hi = 4; failed = true });
  M.record m (M.Split { lo = 4; hi = 8; mid = 6 });
  let summary =
    {
      M.n_seeds = 2;
      n_tests = 1;
      n_unknown = 0;
      counts = [ ("lk:Allow", 1) ];
      rows =
        [
          {
            M.seed = 9;
            test = "T";
            verdicts = [ ("lk", "Forbid"); ("c11", "Allow") ];
            kinds = [ "lk-vs-c11" ];
          };
        ];
      rows_dropped = 0;
      time_s = 0.5;
    }
  in
  M.record m (M.Completed { lo = 8; hi = 10; summary });
  M.record m
    (M.Quarantine { lo = 4; hi = 6; attempts = 2; error = "exit 42" });
  M.close m;
  (match M.load path with
  | Error e -> Alcotest.fail e
  | Ok m' ->
      let shards = M.shards m' in
      Alcotest.(check int) "after split" 4 (List.length shards);
      let find lo hi =
        List.find (fun (s : M.shard) -> s.lo = lo && s.hi = hi) shards
      in
      (match (find 0 4).state with
      | M.Pending -> ()
      | _ -> Alcotest.fail "s0-4 should be pending after requeue");
      Alcotest.(check int) "failed requeue escalated" 1 (find 0 4).M.attempts;
      (match (find 4 6).state with
      | M.Quarantined { attempts = 2; error = "exit 42" } -> ()
      | _ -> Alcotest.fail "s4-6 should be quarantined");
      (match (find 8 10).state with
      | M.Done s ->
          Alcotest.(check int) "summary tests" 1 s.M.n_tests;
          let r = List.hd s.M.rows in
          Alcotest.(check (list string)) "row kinds" [ "lk-vs-c11" ] r.M.kinds;
          Alcotest.(check (list (pair string string)))
            "row verdicts"
            [ ("lk", "Forbid"); ("c11", "Allow") ]
            r.M.verdicts
      | _ -> Alcotest.fail "s8-10 should be done"));
  rm_rf dir

let test_manifest_spec_mismatch () =
  let dir = tmpdir () in
  let path = Filename.concat dir "m.jsonl" in
  let spec = { M.size = 4; seed_lo = 0; seed_hi = 10; shard_size = 4 } in
  M.close (M.create path spec);
  (match M.open_ path { spec with M.seed_hi = 20 } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "spec mismatch must be refused");
  (match M.open_ path spec with
  | Ok m -> M.close m
  | Error e -> Alcotest.fail e);
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Kill the orchestrator at every manifest byte offset                 *)
(* ------------------------------------------------------------------ *)

(* Ground truth once, uninterrupted.  Then, for every prefix of the
   final manifest — as if the orchestrator died exactly there and its
   shard journals were lost too — resume in a fresh directory and
   demand the byte-identical mined report.  This subsumes torn lines
   (offsets inside a line), lost leases (prefix ends at a lease),
   manifests reduced to their header, and the empty file. *)
let test_resume_at_every_offset () =
  let gt_dir = tmpdir () in
  let gt = run_json (config gt_dir) in
  let manifest = read_file (C.manifest_path gt_dir) in
  let n = String.length manifest in
  Alcotest.(check bool) "manifest non-trivial" true (n > 200);
  for cut = 0 to n do
    let dir = tmpdir () in
    write_file (C.manifest_path dir) (String.sub manifest 0 cut);
    let got = run_json (config dir) in
    if got <> gt then
      Alcotest.failf "resume from offset %d/%d diverged:\n%s\n  vs\n%s" cut n
        got gt;
    rm_rf dir
  done;
  rm_rf gt_dir

(* Same property through a real kill -9: fork the orchestrator, shoot
   it mid-flight (leaving orphaned workers and half-written journals),
   then resume in-process. *)
let test_resume_after_sigkill () =
  let gt_dir = tmpdir () in
  let gt = run_json (config ~seeds:(0, 60) ~shard:8 gt_dir) in
  let dir = tmpdir () in
  let cfg = config ~seeds:(0, 60) ~shard:8 dir in
  (match Unix.fork () with
  | 0 ->
      (match C.run cfg with _ -> ());
      Unix._exit 0
  | pid ->
      Unix.sleepf 0.05;
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] pid));
  Alcotest.(check string) "resumed = uninterrupted" gt (run_json cfg);
  rm_rf dir;
  rm_rf gt_dir

(* ------------------------------------------------------------------ *)
(* Failure ladder: poison and wedge                                    *)
(* ------------------------------------------------------------------ *)

let quarantined_ranges json_dir =
  match M.load (C.manifest_path json_dir) with
  | Error e -> Alcotest.fail e
  | Ok m ->
      List.filter_map
        (fun (s : M.shard) ->
          match s.state with
          | M.Quarantined _ -> Some (s.lo, s.hi)
          | _ -> None)
        (M.shards m)

(* The mined patterns section, for comparisons that should ignore shard
   structure (splits change n_shards but must not change verdicts). *)
let patterns_part json =
  let needle = "\"patterns\":" in
  let rec find i =
    if i + String.length needle > String.length json then
      Alcotest.fail "report has no patterns member"
    else if String.sub json i (String.length needle) = needle then
      String.sub json i (String.length json - i)
    else find (i + 1)
  in
  find 0

let test_poison_quarantine () =
  let gt_dir = tmpdir () in
  let gt =
    run_json (config ~seeds:(0, 100) ~shard:16 ~models:[ "lk"; "c11" ] gt_dir)
  in
  let dir = tmpdir () in
  let cfg =
    config ~seeds:(0, 100) ~shard:16 ~models:[ "lk"; "c11" ] ~poison:[ 37 ]
      dir
  in
  let poisoned =
    match C.run cfg with
    | Error e -> Alcotest.fail e
    | Ok rep ->
        Alcotest.(check int) "one quarantined shard" 1
          rep.C.totals.C.n_quarantined;
        Alcotest.(check (list (pair int int)))
          "exactly the poison singleton"
          [ (37, 38) ]
          (quarantined_ranges dir);
        C.report_to_json rep
  in
  (* seed 37 contributes no disagreement row in the ground truth, so
     every mined pattern must survive the quarantine untouched *)
  Alcotest.(check string)
    "patterns unchanged by quarantine" (patterns_part gt)
    (patterns_part poisoned);
  (* resuming a finished campaign re-mines the identical report *)
  Alcotest.(check string) "resume is idempotent" poisoned (run_json cfg);
  rm_rf dir;
  rm_rf gt_dir

let test_wedge_lease_expiry () =
  let dir = tmpdir () in
  let cfg =
    config ~seeds:(0, 4) ~shard:2 ~jobs:1 ~wedge:[ 1 ] ~lease:0.2 dir
  in
  (match C.run cfg with
  | Error e -> Alcotest.fail e
  | Ok rep ->
      Alcotest.(check int) "wedge quarantined" 1 rep.C.totals.C.n_quarantined;
      (match rep.C.quarantined with
      | [ sh ] -> (
          Alcotest.(check (pair int int)) "the wedged singleton" (1, 2)
            (sh.M.lo, sh.M.hi);
          match sh.M.state with
          | M.Quarantined { error = "lease expired"; _ } -> ()
          | _ -> Alcotest.fail "expected lease-expired quarantine")
      | _ -> Alcotest.fail "expected exactly one quarantined shard"));
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Disagreement analysis                                               *)
(* ------------------------------------------------------------------ *)

let test_kinds () =
  Alcotest.(check (list string))
    "implementation split" [ "native-vs-cat" ]
    (C.kinds_of_verdicts [ ("lk", "Allow"); ("cat", "Forbid") ]);
  Alcotest.(check (list string))
    "hw unsound + c11 gap"
    [ "hw-unsound:Power8"; "lk-vs-c11" ]
    (C.kinds_of_verdicts
       [ ("lk", "Forbid"); ("c11", "Allow"); ("hw:Power8", "obs") ]);
  Alcotest.(check (list string))
    "agreement is no kind" []
    (C.kinds_of_verdicts
       [ ("lk", "Allow"); ("cat", "Allow"); ("c11", "Allow") ]);
  Alcotest.(check (list string))
    "unknown never disagrees" []
    (C.kinds_of_verdicts [ ("lk", "Unknown"); ("c11", "Allow") ]);
  Alcotest.(check (list string))
    "hw observation of allowed is sound" []
    (C.kinds_of_verdicts [ ("lk", "Allow"); ("hw:ARMv7", "obs") ]);
  Alcotest.(check int) "severity order" 0 (C.severity_of_kind "native-vs-cat");
  Alcotest.(check int) "hw severity" 1 (C.severity_of_kind "hw-unsound:Power8");
  Alcotest.(check int) "c11 severity" 2 (C.severity_of_kind "lk-vs-c11")

(* ------------------------------------------------------------------ *)
(* Vcache startup compaction (satellite)                               *)
(* ------------------------------------------------------------------ *)

let entry id =
  {
    Harness.Report.item_id = id;
    status = Harness.Report.Pass Exec.Check.Allow;
    time = 0.1;
    n_candidates = 3;
    retried = false;
    result = None;
  }

let count_lines path =
  let n = ref 0 in
  J.iter_lines path (fun _ -> incr n);
  !n

let test_vcache_compaction () =
  let dir = tmpdir () in
  let path = Filename.concat dir "vcache.jsonl" in
  (* three live bindings... *)
  let c = Harness.Vcache.create ~journal:path () in
  List.iter (fun k -> Harness.Vcache.store c k (entry k)) [ "a"; "b"; "c" ];
  Harness.Vcache.close c;
  (* ...then simulate restart churn: duplicates, garbage, a torn tail *)
  let lines = String.split_on_char '\n' (String.trim (read_file path)) in
  let oc = open_out_gen [ Open_append ] 0o644 path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  output_string oc "not json at all\n";
  output_string oc "{\"vkey\": \"torn";
  close_out oc;
  Alcotest.(check bool) "journal bloated" true (count_lines path > 3);
  (* below the threshold: no rewrite *)
  let c = Harness.Vcache.create ~journal:path ~compact_threshold:1000 () in
  Alcotest.(check int) "all bindings live" 3 (Harness.Vcache.size c);
  Harness.Vcache.close c;
  Alcotest.(check bool) "untouched below threshold" true (count_lines path > 3);
  (* at the threshold: compacted to exactly the live set *)
  let c = Harness.Vcache.create ~journal:path ~compact_threshold:4 () in
  Alcotest.(check int) "bindings survive compaction" 3 (Harness.Vcache.size c);
  Harness.Vcache.close c;
  Alcotest.(check int) "file rewritten to live set" 3 (count_lines path);
  (* and the compacted file still recovers *)
  let c = Harness.Vcache.create ~journal:path () in
  Alcotest.(check int) "recovered after compaction" 3 (Harness.Vcache.size c);
  Alcotest.(check bool) "binding content survives" true
    (Harness.Vcache.find c "b" <> None);
  Harness.Vcache.close c;
  rm_rf dir

let () =
  Alcotest.run "campaign"
    [
      ( "manifest",
        [
          Alcotest.test_case "event round-trip" `Quick test_manifest_roundtrip;
          Alcotest.test_case "spec mismatch refused" `Quick
            test_manifest_spec_mismatch;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "resume at every byte offset" `Slow
            test_resume_at_every_offset;
          Alcotest.test_case "resume after kill -9" `Quick
            test_resume_after_sigkill;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "poison bisected to quarantine" `Slow
            test_poison_quarantine;
          Alcotest.test_case "wedge trips the lease" `Slow
            test_wedge_lease_expiry;
        ] );
      ( "mining",
        [ Alcotest.test_case "disagreement kinds" `Quick test_kinds ] );
      ( "vcache",
        [
          Alcotest.test_case "startup compaction" `Quick
            test_vcache_compaction;
        ] );
    ]
