(* Tests for the kernel IR: the litmus-to-IR compiler and the Figure 15
   RCU implementation (structure, faithful behaviour, broken variants). *)

let battery name = Harness.Battery.test_of (Harness.Battery.find name)

(* ------------------------------------------------------------------ *)
(* Compilation from litmus                                             *)
(* ------------------------------------------------------------------ *)

let test_of_litmus_mp () =
  let p = Kir.of_litmus (battery "MP+wmb+rmb") in
  Alcotest.(check int) "two threads" 2 (List.length p.Kir.threads);
  (match List.nth p.Kir.threads 0 with
  | [
   Kir.Write (Litmus.Ast.W_once, Kir.Var "x", Kir.Int 1);
   Kir.Fence Litmus.Ast.F_wmb;
   Kir.Write (Litmus.Ast.W_once, Kir.Var "y", Kir.Int 1);
  ] ->
      ()
  | _ -> Alcotest.fail "P0 shape");
  Alcotest.(check (list (pair string int))) "init" [ ("x", 0); ("y", 0) ]
    p.Kir.init

let test_of_litmus_rcu_deref () =
  let p = Kir.of_litmus (battery "MP+wmb+rcu-deref") in
  let reader = List.nth p.Kir.threads 1 in
  (match reader with
  | Kir.Read _ :: Kir.Fence Litmus.Ast.F_rb_dep :: _ -> ()
  | _ -> Alcotest.fail "rcu_dereference compiles to read + rb-dep");
  Alcotest.(check bool) "addr table covers globals" true
    (List.mem_assoc "z" p.Kir.addr_table)

let test_of_litmus_preserves_verdict_semantics () =
  (* running the compiled program on the SC machine yields only outcomes
     the SC model allows, for every battery test *)
  List.iter
    (fun (e : Harness.Battery.entry) ->
      let t = Harness.Battery.test_of e in
      if not (Litmus.Ast.has_rcu t) then begin
        let s = Hwsim.run_test Hwsim.Arch.sc ~runs:300 ~seed:8 t in
        let allowed = Exec.Check.allowed_outcomes (module Models.Sc) t in
        List.iter
          (fun (o, _) ->
            Alcotest.(check bool)
              (e.name ^ ": SC-machine outcome is SC-model outcome")
              true (List.mem o allowed))
          s.Hwsim.outcomes
      end)
    Harness.Battery.all

(* ------------------------------------------------------------------ *)
(* Figure 15 implementation structure                                  *)
(* ------------------------------------------------------------------ *)

let test_transform_shape () =
  let p = Kir.Rcu_impl.transform (Kir.of_litmus (battery "RCU-MP")) in
  Alcotest.(check bool) "gc initialised to 1" true
    (List.assoc "gc" p.Kir.init = 1);
  Alcotest.(check bool) "rc[] sized by thread count" true
    (List.assoc "rc" p.Kir.arrays = 2);
  (* no RCU fences remain *)
  let rec has_rcu_fence = function
    | Kir.Fence
        (Litmus.Ast.F_rcu_lock | Litmus.Ast.F_rcu_unlock
        | Litmus.Ast.F_sync_rcu) ->
        true
    | Kir.If (_, a, b) ->
        List.exists has_rcu_fence a || List.exists has_rcu_fence b
    | Kir.While (_, a) -> List.exists has_rcu_fence a
    | _ -> false
  in
  List.iter
    (fun th ->
      Alcotest.(check bool) "primitives replaced" false
        (List.exists has_rcu_fence th))
    p.Kir.threads;
  (* the updater serialises grace periods through gp_lock *)
  let rec uses_mutex = function
    | Kir.Mutex_lock "gp_lock" -> true
    | Kir.If (_, a, b) -> List.exists uses_mutex a || List.exists uses_mutex b
    | Kir.While (_, a) -> List.exists uses_mutex a
    | _ -> false
  in
  Alcotest.(check bool) "updater takes gp_lock" true
    (List.exists (fun th -> List.exists uses_mutex th) p.Kir.threads)

let test_nested_rscs_counts () =
  (* nested lock/unlock: the counter discipline keeps rc[i] balanced, so
     the machine terminates with rc[tid] = 0 *)
  let t =
    Litmus.parse
      {|C nest
{ x=0; }
P0(int *x) {
  rcu_read_lock();
  rcu_read_lock();
  int r1 = READ_ONCE(x);
  rcu_read_unlock();
  rcu_read_unlock();
}
P1(int *x) {
  WRITE_ONCE(x, 1);
  synchronize_rcu();
}
exists (0:r1=0)|}
  in
  let p = Kir.Rcu_impl.transform (Kir.of_litmus t) in
  let results, aborted = Hwsim.run_program Hwsim.Arch.power8 ~runs:60 ~seed:2 p in
  Alcotest.(check int) "no aborts" 0 aborted;
  List.iter
    (fun (r : Hwsim.Machine.run_result) ->
      (* the phase bit may remain set; the CS_MASK counter must be 0 *)
      Alcotest.(check int) "rc[0] counter balanced" 0
        ((try List.assoc "rc[0]" r.Hwsim.Machine.mem with Not_found -> -1)
        land 0x0ffff))
    results

(* ------------------------------------------------------------------ *)
(* Theorem 2 empirically + the broken variants                         *)
(* ------------------------------------------------------------------ *)

let run_variant variant arch runs seed name =
  let t = battery name in
  let p = Kir.Rcu_impl.transform ~variant (Kir.of_litmus t) in
  let results, _ = Hwsim.run_program arch ~runs ~seed p in
  List.length (List.filter (Hwsim.eval_cond t) results)

let test_faithful_impl_clean () =
  List.iter
    (fun name ->
      List.iter
        (fun arch ->
          Alcotest.(check int)
            (name ^ " faithful impl on " ^ arch.Hwsim.Arch.name)
            0
            (run_variant Kir.Rcu_impl.Full arch 250 17 name))
        [ Hwsim.Arch.power8; Hwsim.Arch.x86 ])
    [ "RCU-MP"; "RCU-deferred-free" ]

let test_broken_impls_caught () =
  (* removing the grace-period wait or the reader-side smp_mb lets the
     forbidden outcome through — the verification harness has teeth *)
  let total_no_wait =
    List.fold_left
      (fun acc seed ->
        acc + run_variant Kir.Rcu_impl.No_wait Hwsim.Arch.x86 600 seed
                "RCU-deferred-free")
      0 [ 1; 2; 3 ]
  in
  Alcotest.(check bool) "no-wait variant shows the forbidden outcome" true
    (total_no_wait > 0);
  let total_no_mb =
    List.fold_left
      (fun acc seed ->
        acc + run_variant Kir.Rcu_impl.No_reader_mb Hwsim.Arch.power8 600 seed
                "RCU-deferred-free")
      0 [ 1; 2; 3 ]
  in
  Alcotest.(check bool) "no-reader-mb variant shows the forbidden outcome"
    true (total_no_mb > 0)

(* ------------------------------------------------------------------ *)
(* call_rcu / rcu_barrier (asynchronous grace periods, Section 7)      *)
(* ------------------------------------------------------------------ *)

(* A deferred-free via call_rcu: the callback (the "free", writing y)
   must not become visible inside an RSCS that read the old data. *)
let call_rcu_program ~deferred =
  {
    Kir.name = "call-rcu-deferred-free";
    init = [];
    arrays = [];
    addr_table = [];
    threads =
      [
        [
          Kir.Fence Litmus.Ast.F_rcu_lock;
          Kir.Read (Litmus.Ast.R_once, "r1", Kir.Var "x");
          Kir.Read (Litmus.Ast.R_once, "r2", Kir.Var "y");
          Kir.Fence Litmus.Ast.F_rcu_unlock;
        ];
        [ Kir.Write (Litmus.Ast.W_once, Kir.Var "x", Kir.Int 1) ]
        @ (if deferred then
             [ Kir.Call_rcu
                 [ Kir.Write (Litmus.Ast.W_once, Kir.Var "y", Kir.Int 1) ] ]
           else [ Kir.Write (Litmus.Ast.W_once, Kir.Var "y", Kir.Int 1) ])
        @ [ Kir.Rcu_barrier; Kir.Read (Litmus.Ast.R_once, "done", Kir.Var "y") ];
      ];
  }

let reg_of (r : Hwsim.Machine.run_result) tid name =
  List.fold_left
    (fun acc (t, n, v) -> if t = tid && n = name then v else acc)
    0 r.Hwsim.Machine.regs

let test_call_rcu_guarantee () =
  let results, aborted =
    Hwsim.run_program Hwsim.Arch.power8 ~runs:1500 ~seed:3
      (call_rcu_program ~deferred:true)
  in
  Alcotest.(check int) "no aborts" 0 aborted;
  List.iter
    (fun r ->
      Alcotest.(check bool) "callback deferred past the RSCS" false
        (reg_of r 0 "r1" = 0 && reg_of r 0 "r2" = 1))
    results

let test_call_rcu_needed () =
  (* without call_rcu the forbidden outcome appears: the harness would
     catch a missing grace period *)
  let results, _ =
    Hwsim.run_program Hwsim.Arch.power8 ~runs:1500 ~seed:3
      (call_rcu_program ~deferred:false)
  in
  Alcotest.(check bool) "immediate free is observable" true
    (List.exists
       (fun r -> reg_of r 0 "r1" = 0 && reg_of r 0 "r2" = 1)
       results)

let test_rcu_barrier_waits () =
  let results, _ =
    Hwsim.run_program Hwsim.Arch.power8 ~runs:300 ~seed:5
      (call_rcu_program ~deferred:true)
  in
  List.iter
    (fun r ->
      Alcotest.(check int) "after rcu_barrier the callback ran" 1
        (reg_of r 1 "done"))
    results

let () =
  Alcotest.run "kir"
    [
      ( "compiler",
        [
          Alcotest.test_case "MP shape" `Quick test_of_litmus_mp;
          Alcotest.test_case "rcu_dereference" `Quick test_of_litmus_rcu_deref;
          Alcotest.test_case "SC semantics preserved" `Slow
            test_of_litmus_preserves_verdict_semantics;
        ] );
      ( "call-rcu",
        [
          Alcotest.test_case "grace-period guarantee" `Slow
            test_call_rcu_guarantee;
          Alcotest.test_case "needed at all" `Quick test_call_rcu_needed;
          Alcotest.test_case "rcu_barrier waits" `Quick
            test_rcu_barrier_waits;
        ] );
      ( "rcu-impl",
        [
          Alcotest.test_case "transform shape" `Quick test_transform_shape;
          Alcotest.test_case "nested counters" `Quick test_nested_rscs_counts;
          Alcotest.test_case "faithful is clean" `Slow
            test_faithful_impl_clean;
          Alcotest.test_case "broken are caught" `Slow
            test_broken_impls_caught;
        ] );
    ]
