(* Tests for the operational hardware simulators: per-architecture weak
   behaviours, fence/dependency enforcement, soundness against the models,
   and the machine's bookkeeping (buffers, coherence floors, RCU
   primitives, mutexes). *)

let battery name = Harness.Battery.test_of (Harness.Battery.find name)

let observed arch ?(runs = 3_000) ?(seed = 123) name =
  (Hwsim.run_test arch ~runs ~seed (battery name)).Hwsim.matched

(* ------------------------------------------------------------------ *)
(* Per-architecture behaviour                                          *)
(* ------------------------------------------------------------------ *)

let test_sc_shows_nothing_weak () =
  List.iter
    (fun name ->
      Alcotest.(check int) ("SC never shows " ^ name) 0
        (observed Hwsim.Arch.sc name))
    [ "SB"; "MP"; "LB"; "WRC"; "RWC"; "PeterZ-No-Synchro" ]

let test_x86_store_buffering_only () =
  Alcotest.(check bool) "x86 shows SB" true (observed Hwsim.Arch.x86 "SB" > 0);
  Alcotest.(check int) "x86 hides MP" 0 (observed Hwsim.Arch.x86 "MP");
  Alcotest.(check int) "x86 hides WRC" 0 (observed Hwsim.Arch.x86 "WRC");
  Alcotest.(check int) "x86 hides LB" 0 (observed Hwsim.Arch.x86 "LB")

let test_relaxed_archs_show_mp () =
  List.iter
    (fun arch ->
      Alcotest.(check bool)
        (arch.Hwsim.Arch.name ^ " shows MP")
        true
        (observed arch "MP" > 0))
    [ Hwsim.Arch.armv7; Hwsim.Arch.armv8; Hwsim.Arch.power8 ]

let test_lb_never_observed () =
  (* Table 5: LB was not observed on any tested machine; our machines
     never execute writes early, so this is structural *)
  List.iter
    (fun arch ->
      Alcotest.(check int)
        (arch.Hwsim.Arch.name ^ " never shows LB")
        0 (observed arch "LB"))
    Hwsim.Arch.table5

let test_fences_kill_weakness () =
  List.iter
    (fun (name : string) ->
      List.iter
        (fun arch ->
          Alcotest.(check int)
            (name ^ " never observed on " ^ arch.Hwsim.Arch.name)
            0 (observed arch name))
        Hwsim.Arch.table5)
    [ "SB+mbs"; "MP+wmb+rmb"; "WRC+po-rel+rmb"; "PeterZ"; "RWC+mbs";
      "MP+po-rel+acq"; "LB+ctrl+mb" ]

let test_peterz_no_synchro_on_x86 () =
  (* the surprising Table 5 cell: observable through the store buffer
     alone, no read reordering needed *)
  Alcotest.(check bool) "PeterZ-No-Synchro on x86" true
    (observed Hwsim.Arch.x86 ~runs:20_000 "PeterZ-No-Synchro" > 0)

let test_alpha_breaks_addr_deps () =
  Alcotest.(check bool) "Alpha shows MP+wmb+addr" true
    (observed Hwsim.Arch.alpha ~runs:6_000 "MP+wmb+addr" > 0);
  Alcotest.(check int) "ARMv8 keeps the dependency" 0
    (observed Hwsim.Arch.armv8 ~runs:6_000 "MP+wmb+addr");
  Alcotest.(check int) "rb-dep repairs Alpha" 0
    (observed Hwsim.Arch.alpha ~runs:6_000 "MP+wmb+rcu-deref")

let test_rcu_forbidden_never_observed () =
  List.iter
    (fun name ->
      List.iter
        (fun arch ->
          Alcotest.(check int)
            (name ^ " on " ^ arch.Hwsim.Arch.name)
            0 (observed arch name))
        Hwsim.Arch.table5)
    [ "RCU-MP"; "RCU-deferred-free" ]

(* ------------------------------------------------------------------ *)
(* Soundness                                                           *)
(* ------------------------------------------------------------------ *)

(* Retry-until-stable sampling: batches with fresh seeds until the
   outcome histogram converges, or the retry cap hits. *)
let test_stable_sampling () =
  let st = Hwsim.run_test_stable Hwsim.Arch.x86 ~batch:500 ~seed:7 (battery "SB") in
  Alcotest.(check bool) "converged" true st.Hwsim.converged;
  Alcotest.(check bool) "ran several batches" true (st.Hwsim.batches >= 4);
  Alcotest.(check int) "cumulative totals"
    (st.Hwsim.batches * 500)
    st.Hwsim.stats.Hwsim.total;
  Alcotest.(check bool) "weak outcome surfaced" true
    (st.Hwsim.stats.Hwsim.matched > 0)

let test_stable_retry_cap () =
  let st =
    Hwsim.run_test_stable Hwsim.Arch.x86 ~batch:50 ~max_batches:2
      ~stable_batches:10 ~seed:7 (battery "SB")
  in
  Alcotest.(check bool) "cap hit" true (not st.Hwsim.converged);
  Alcotest.(check int) "stopped at the cap" 2 st.Hwsim.batches

let test_soundness_budgeted () =
  let s = Hwsim.run_test Hwsim.Arch.x86 ~runs:200 ~seed:3 (battery "SB") in
  (match Hwsim.soundness Lkmm.oracle (battery "SB") s with
  | Hwsim.Sound -> ()
  | _ -> Alcotest.fail "expected sound");
  match
    Hwsim.soundness
      ~limits:(Exec.Budget.limits ~max_candidates:1 ())
      Lkmm.oracle (battery "SB") s
  with
  | Hwsim.Soundness_unknown (Exec.Budget.Too_many_candidates _) -> ()
  | _ -> Alcotest.fail "expected soundness unknown"

let test_soundness_battery () =
  List.iter
    (fun (e : Harness.Battery.entry) ->
      let test = Harness.Battery.test_of e in
      List.iter
        (fun arch ->
          let s = Hwsim.run_test arch ~runs:800 ~seed:3 test in
          Alcotest.(check (list (pair (list (pair string int)) int)))
            (e.name ^ " sound on " ^ arch.Hwsim.Arch.name)
            []
            (Hwsim.unsound_outcomes Lkmm.oracle test s))
        (Hwsim.Arch.alpha :: Hwsim.Arch.table5))
    Harness.Battery.all

let test_tso_sim_sound_wrt_tso_model () =
  (* the x86 machine stays within the x86-TSO axiomatic model *)
  List.iter
    (fun (e : Harness.Battery.entry) ->
      let test = Harness.Battery.test_of e in
      if not (Litmus.Ast.has_rcu test) then
        let s = Hwsim.run_test Hwsim.Arch.x86 ~runs:800 ~seed:3 test in
        Alcotest.(check (list (pair (list (pair string int)) int)))
          (e.name ^ " x86 within TSO")
          []
          (Hwsim.unsound_outcomes (Exec.Oracle.of_model (module Models.Tso)) test s))
    Harness.Battery.all

let test_sc_sim_sound_wrt_sc_model () =
  List.iter
    (fun (e : Harness.Battery.entry) ->
      let test = Harness.Battery.test_of e in
      if not (Litmus.Ast.has_rcu test) then
        let s = Hwsim.run_test Hwsim.Arch.sc ~runs:400 ~seed:3 test in
        Alcotest.(check (list (pair (list (pair string int)) int)))
          (e.name ^ " SC machine within SC")
          []
          (Hwsim.unsound_outcomes (Exec.Oracle.of_model (module Models.Sc)) test s))
    Harness.Battery.all

let test_soundness_generated () =
  let rng = Random.State.make [| 31 |] in
  let tests =
    Diygen.sample ~vocabulary:Diygen.Edge.core_vocabulary ~rng ~count:25 4
    @ Diygen.sample ~vocabulary:Diygen.Edge.core_vocabulary ~rng ~count:15 5
  in
  List.iter
    (fun t ->
      List.iter
        (fun arch ->
          let s = Hwsim.run_test arch ~runs:400 ~seed:3 t in
          Alcotest.(check (list (pair (list (pair string int)) int)))
            (t.Litmus.Ast.name ^ " sound on " ^ arch.Hwsim.Arch.name)
            []
            (Hwsim.unsound_outcomes Lkmm.oracle t s))
        [ Hwsim.Arch.power8; Hwsim.Arch.x86 ])
    tests

(* ------------------------------------------------------------------ *)
(* Machine bookkeeping on hand-written IR programs                     *)
(* ------------------------------------------------------------------ *)

let run_ir ?(arch = Hwsim.Arch.power8) ?(seed = 9) prog =
  match
    Hwsim.Machine.run ~rng:(Random.State.make [| seed |]) arch prog
  with
  | Some r -> r
  | None -> Alcotest.fail "machine aborted"

let reg (r : Hwsim.Machine.run_result) tid name =
  List.fold_left
    (fun acc (t, n, v) -> if t = tid && n = name then v else acc)
    min_int r.Hwsim.Machine.regs

let mem (r : Hwsim.Machine.run_result) key =
  try List.assoc key r.Hwsim.Machine.mem with Not_found -> min_int

let base_prog threads =
  {
    Kir.name = "t";
    init = [];
    arrays = [];
    threads;
    addr_table = [];
  }

let test_machine_sequential () =
  (* arithmetic, loops, arrays, in one thread *)
  let p =
    base_prog
      [
        [
          Kir.Assign ("i", Kir.Int 0);
          Kir.Assign ("sum", Kir.Int 0);
          Kir.While
            ( Kir.Bin (Litmus.Ast.Lt, Kir.Reg "i", Kir.Int 5),
              [
                Kir.Write (Litmus.Ast.W_once, Kir.Arr ("a", Kir.Reg "i"),
                           Kir.Reg "i");
                Kir.Assign
                  ("sum", Kir.Bin (Litmus.Ast.Add, Kir.Reg "sum", Kir.Reg "i"));
                Kir.Assign ("i", Kir.Bin (Litmus.Ast.Add, Kir.Reg "i", Kir.Int 1));
              ] );
        ];
      ]
  in
  let p = { p with Kir.arrays = [ ("a", 5) ] } in
  let r = run_ir p in
  Alcotest.(check int) "sum 0..4" 10 (reg r 0 "sum");
  Alcotest.(check int) "a[3]" 3 (mem r "a[3]")

let test_machine_buffer_forwarding () =
  (* a thread reads its own buffered write *)
  let p =
    base_prog
      [
        [
          Kir.Write (Litmus.Ast.W_once, Kir.Var "x", Kir.Int 7);
          Kir.Read (Litmus.Ast.R_once, "r", Kir.Var "x");
        ];
      ]
  in
  for seed = 0 to 20 do
    let r = run_ir ~seed p in
    Alcotest.(check int) "forwarding" 7 (reg r 0 "r")
  done

let test_machine_po_loc_coherence () =
  (* reads of one location never go backwards, on any profile *)
  let p =
    base_prog
      [
        [ Kir.Write (Litmus.Ast.W_once, Kir.Var "x", Kir.Int 1);
          Kir.Write (Litmus.Ast.W_once, Kir.Var "x", Kir.Int 2) ];
        [ Kir.Read (Litmus.Ast.R_once, "r1", Kir.Var "x");
          Kir.Read (Litmus.Ast.R_once, "r2", Kir.Var "x") ];
      ]
  in
  List.iter
    (fun arch ->
      for seed = 0 to 80 do
        let r = run_ir ~arch ~seed p in
        let r1 = reg r 1 "r1" and r2 = reg r 1 "r2" in
        Alcotest.(check bool)
          (Printf.sprintf "coherent on %s (r1=%d r2=%d)" arch.Hwsim.Arch.name
             r1 r2)
          true
          (not (r1 = 2 && r2 = 1) && not (r1 > 0 && r2 = 0))
      done)
    [ Hwsim.Arch.power8; Hwsim.Arch.alpha ]

let test_machine_mutex () =
  (* mutual exclusion: both threads increment a counter under a lock *)
  let incr_body =
    [
      Kir.Mutex_lock "m";
      Kir.Read (Litmus.Ast.R_once, "r", Kir.Var "c");
      Kir.Write
        (Litmus.Ast.W_once, Kir.Var "c",
         Kir.Bin (Litmus.Ast.Add, Kir.Reg "r", Kir.Int 1));
      Kir.Mutex_unlock "m";
    ]
  in
  for seed = 0 to 50 do
    let r = run_ir ~seed (base_prog [ incr_body; incr_body ]) in
    Alcotest.(check int) "both increments land" 2 (mem r "c")
  done

let test_machine_native_gp_waits () =
  (* a GP starting while a reader is inside its RSCS must wait for the
     unlock: the reader's two reads then bracket no GP *)
  let t = battery "RCU-MP" in
  let p = Kir.of_litmus t in
  for seed = 0 to 200 do
    let r = run_ir ~seed ~arch:Hwsim.Arch.power8 p in
    Alcotest.(check bool) "forbidden outcome absent" false
      (reg r 0 "r1" = 1 && reg r 0 "r2" = 0)
  done

let test_machine_abort_on_livelock () =
  (* a program that can never finish hits the step cap and aborts *)
  let p =
    base_prog [ [ Kir.While (Kir.Int 1, [ Kir.Skip ]) ] ]
  in
  Alcotest.(check bool) "aborts" true
    (Hwsim.Machine.run ~rng:(Random.State.make [| 1 |]) Hwsim.Arch.x86 p
    = None)

let test_outcome_extraction () =
  let t = battery "MP" in
  let s = Hwsim.run_test Hwsim.Arch.sc ~runs:200 ~seed:4 t in
  (* outcomes carry the same keys as the model side *)
  let model_keys =
    match Exec.Check.allowed_outcomes (module Models.Sc) t with
    | o :: _ -> List.map fst o
    | [] -> []
  in
  List.iter
    (fun (o, _) ->
      Alcotest.(check (list string)) "keys align" model_keys (List.map fst o))
    s.Hwsim.outcomes

let () =
  Alcotest.run "hwsim"
    [
      ( "architectures",
        [
          Alcotest.test_case "SC machine" `Quick test_sc_shows_nothing_weak;
          Alcotest.test_case "x86 = store buffer" `Quick
            test_x86_store_buffering_only;
          Alcotest.test_case "relaxed show MP" `Quick
            test_relaxed_archs_show_mp;
          Alcotest.test_case "LB never" `Quick test_lb_never_observed;
          Alcotest.test_case "fences enforce" `Slow test_fences_kill_weakness;
          Alcotest.test_case "PeterZ-NS on x86" `Slow
            test_peterz_no_synchro_on_x86;
          Alcotest.test_case "Alpha addr deps" `Slow
            test_alpha_breaks_addr_deps;
          Alcotest.test_case "RCU forbidden" `Slow
            test_rcu_forbidden_never_observed;
        ] );
      ( "stable",
        [
          Alcotest.test_case "convergence" `Quick test_stable_sampling;
          Alcotest.test_case "retry cap" `Quick test_stable_retry_cap;
          Alcotest.test_case "budgeted soundness" `Quick
            test_soundness_budgeted;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "battery vs LK" `Slow test_soundness_battery;
          Alcotest.test_case "x86 vs TSO" `Slow test_tso_sim_sound_wrt_tso_model;
          Alcotest.test_case "SC machine vs SC" `Quick
            test_sc_sim_sound_wrt_sc_model;
          Alcotest.test_case "generated vs LK" `Slow test_soundness_generated;
        ] );
      ( "machine",
        [
          Alcotest.test_case "sequential programs" `Quick
            test_machine_sequential;
          Alcotest.test_case "buffer forwarding" `Quick
            test_machine_buffer_forwarding;
          Alcotest.test_case "po-loc coherence" `Quick
            test_machine_po_loc_coherence;
          Alcotest.test_case "mutex" `Quick test_machine_mutex;
          Alcotest.test_case "native GP waits" `Slow
            test_machine_native_gp_waits;
          Alcotest.test_case "livelock abort" `Quick
            test_machine_abort_on_livelock;
          Alcotest.test_case "outcome extraction" `Quick
            test_outcome_extraction;
        ] );
    ]
