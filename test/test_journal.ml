(* Tests for Harness.Journal: line round-trips, tolerance of torn and
   duplicated lines, and crash-safe resume — a pool run SIGKILLed
   mid-battery must resume from its journal, losing at most one item
   and ending with the same report as an uninterrupted run. *)

module R = Harness.Runner
module J = Harness.Journal
module P = Harness.Pool
module B = Exec.Budget

let src name = (Harness.Battery.find name).Harness.Battery.source
let item id source expected = { R.id; source = `Text source; expected }

let tmpfile () = Filename.temp_file "journal_test" ".jsonl"

let entry ?(retried = false) ?(time = 0.25) ?(candidates = 7) id status =
  {
    R.item_id = id;
    status;
    time;
    n_candidates = candidates;
    retried;
    result = None;
  }

let sample_entries =
  [
    entry "p" (R.Pass Exec.Check.Allow);
    entry "f"
      (R.Fail { expected = Exec.Check.Forbid; got = Exec.Check.Allow });
    entry "g-time" (R.Gave_up (B.Timed_out 2.5));
    entry "g-events" (R.Gave_up (B.Too_many_events (300, 256)));
    entry "g-cand" (R.Gave_up (B.Too_many_candidates 1000));
    entry "g-heap" (R.Gave_up (B.Heap_exceeded 64));
    entry ~retried:true "e-crash"
      (R.Err { R.cls = R.Crash 11; msg = "worker killed by SIGSEGV"; line = None });
    entry "e-parse"
      (R.Err { R.cls = R.Parse; msg = "syntax error"; line = Some 3 });
    entry "e-quote"
      (R.Err { R.cls = R.Internal; msg = "a \"quoted\"\nmessage"; line = None });
  ]

let check_entry_eq label (a : R.entry) (b : R.entry) =
  Alcotest.(check string) (label ^ " id") a.R.item_id b.R.item_id;
  Alcotest.(check bool) (label ^ " status") true (a.R.status = b.R.status);
  Alcotest.(check bool) (label ^ " retried") a.R.retried b.R.retried;
  Alcotest.(check int) (label ^ " candidates") a.R.n_candidates b.R.n_candidates;
  Alcotest.(check bool)
    (label ^ " time")
    true
    (Float.abs (a.R.time -. b.R.time) < 1e-6)

let test_round_trip () =
  List.iter
    (fun e ->
      match J.entry_of_line (J.line_of_entry e) with
      | Some e' -> check_entry_eq e.R.item_id e e'
      | None ->
          Alcotest.failf "%s did not round-trip: %s" e.R.item_id
            (J.line_of_entry e))
    sample_entries

let write_lines path lines =
  let oc = open_out path in
  List.iter (fun l -> output_string oc l) lines;
  close_out oc

let test_truncated_tail () =
  let path = tmpfile () in
  let l1 = J.line_of_entry (List.nth sample_entries 0) in
  let l2 = J.line_of_entry (List.nth sample_entries 1) in
  let l3 = J.line_of_entry (List.nth sample_entries 2) in
  (* the third line is torn mid-write, as after a kill -9 *)
  write_lines path
    [ l1 ^ "\n"; l2 ^ "\n"; String.sub l3 0 (String.length l3 / 2) ];
  let loaded = J.load path in
  Sys.remove path;
  Alcotest.(check int) "torn line dropped" 2 (List.length loaded);
  Alcotest.(check (list string)) "surviving ids" [ "p"; "f" ]
    (List.map (fun (e : R.entry) -> e.R.item_id) loaded)

let test_empty_and_missing () =
  let path = tmpfile () in
  write_lines path [];
  Alcotest.(check int) "empty journal" 0 (List.length (J.load path));
  Sys.remove path;
  Alcotest.(check int) "missing journal" 0 (List.length (J.load path))

let test_duplicate_ids_last_wins () =
  let path = tmpfile () in
  let first = entry "dup" (R.Err { R.cls = R.Crash 11; msg = "x"; line = None }) in
  let second = entry ~retried:true "dup" (R.Pass Exec.Check.Allow) in
  write_lines path
    [
      J.line_of_entry first ^ "\n";
      J.line_of_entry (entry "other" (R.Pass Exec.Check.Forbid)) ^ "\n";
      J.line_of_entry second ^ "\n";
    ];
  let loaded = J.load path in
  Sys.remove path;
  Alcotest.(check int) "two distinct ids" 2 (List.length loaded);
  let dup = List.find (fun (e : R.entry) -> e.R.item_id = "dup") loaded in
  check_entry_eq "last occurrence wins" second dup;
  (* order of first occurrence is preserved *)
  Alcotest.(check (list string)) "order" [ "dup"; "other" ]
    (List.map (fun (e : R.entry) -> e.R.item_id) loaded)

let test_writer_appends () =
  let path = tmpfile () in
  let w = J.open_writer path in
  J.write w (List.nth sample_entries 0);
  J.close w;
  let w = J.open_writer path in
  J.write w (List.nth sample_entries 1);
  J.close w;
  let loaded = J.load path in
  Sys.remove path;
  Alcotest.(check (list string)) "both sessions present" [ "p"; "f" ]
    (List.map (fun (e : R.entry) -> e.R.item_id) loaded)

let test_fsync_writer () =
  let path = tmpfile () in
  let w = J.open_writer ~fsync:true path in
  List.iter (J.write w) sample_entries;
  J.close w;
  let loaded = J.load path in
  Sys.remove path;
  Alcotest.(check (list string))
    "all entries durable through the fsync path"
    (List.map (fun (e : R.entry) -> e.R.item_id) sample_entries)
    (List.map (fun (e : R.entry) -> e.R.item_id) loaded)

(* The recovery property, exhaustively: truncate a journal at *every*
   byte offset.  Whatever the cut, recovery must yield exactly the
   entries whose complete line text fits under it — never dropping a
   complete entry, never accepting a torn one. *)
let test_truncate_every_offset () =
  let entries =
    [
      List.nth sample_entries 0;
      List.nth sample_entries 2;
      List.nth sample_entries 6;
      List.nth sample_entries 8;
    ]
  in
  let texts = List.map J.line_of_entry entries in
  let full = String.concat "" (List.map (fun t -> t ^ "\n") texts) in
  (* offset at which each entry's line text (newline excluded — a final
     line torn of its newline still parses) is complete *)
  let ends, _ =
    List.fold_left
      (fun (acc, pos) t ->
        let e = pos + String.length t in
        (e :: acc, e + 1))
      ([], 0) texts
  in
  let ends = List.rev ends in
  let path = tmpfile () in
  for cut = 0 to String.length full do
    write_lines path [ String.sub full 0 cut ];
    let expected =
      List.filteri (fun i _ -> List.nth ends i <= cut) entries
    in
    let loaded = J.load path in
    Alcotest.(check (list string))
      (Printf.sprintf "cut at byte %d" cut)
      (List.map (fun (e : R.entry) -> e.R.item_id) expected)
      (List.map (fun (e : R.entry) -> e.R.item_id) loaded);
    List.iter2 (fun e e' -> check_entry_eq "recovered intact" e e')
      expected loaded
  done;
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Resume after SIGKILL                                                *)
(* ------------------------------------------------------------------ *)

let battery_items =
  [
    item "SB" (src "SB") (Some Exec.Check.Allow);
    item "MP" (src "MP") (Some Exec.Check.Allow);
    item "MP+wmb+rmb" (src "MP+wmb+rmb") (Some Exec.Check.Forbid);
    item "LB" (src "LB") (Some Exec.Check.Allow);
    item "bad" "C broken\n{ x=0;\nP0(int *x" None;
  ]

let limits = B.limits ~timeout:5.0 ()
let oracle = Lkmm.oracle

let config = { P.default with P.jobs = 1; limits }

(* each item takes >= 150ms, giving the parent a window to SIGKILL the
   run between journal appends *)
let slow_worker (it : R.item) =
  Unix.sleepf 0.15;
  R.run_item ~limits ~oracle it

let wait_for_journal_lines path n deadline =
  let count () =
    if not (Sys.file_exists path) then 0
    else begin
      let ic = open_in path in
      let k = ref 0 in
      (try
         while true do
           ignore (input_line ic);
           incr k
         done
       with End_of_file -> ());
      close_in ic;
      !k
    end
  in
  let rec go () =
    if count () >= n then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf 0.01;
      go ()
    end
  in
  go ()

let test_resume_after_sigkill () =
  let path = tmpfile () in
  Sys.remove path;
  (* the runner as a subprocess: a forked child drives the pool with
     the journal attached *)
  flush stdout;
  flush stderr;
  let child =
    match Unix.fork () with
    | 0 ->
        (try
           ignore
             (P.run ~config ~worker:slow_worker ~journal:path ~oracle
                battery_items)
         with _ -> ());
        Unix._exit 0
    | pid -> pid
  in
  (* kill -9 once at least two items are journalled, mid-battery *)
  let got_two =
    wait_for_journal_lines path 2 (Unix.gettimeofday () +. 20.)
  in
  Unix.kill child Sys.sigkill;
  ignore (Unix.waitpid [] child);
  Alcotest.(check bool) "journal grew before the kill" true got_two;
  let journalled = List.length (J.load path) in
  Alcotest.(check bool) "partial journal" true
    (journalled >= 2 && journalled < List.length battery_items);
  (* resume: only the missing items re-run *)
  let resumed =
    P.run ~config ~worker:slow_worker ~journal:path ~resume:path ~oracle
      battery_items
  in
  (* ... and the report is the one an uninterrupted run produces *)
  let reference = P.run ~config ~oracle battery_items in
  Alcotest.(check int) "all items reported"
    (List.length battery_items)
    (List.length resumed.R.entries);
  List.iter2
    (fun (a : R.entry) (b : R.entry) ->
      Alcotest.(check string) "same id order" b.R.item_id a.R.item_id;
      Alcotest.(check string)
        (b.R.item_id ^ " same classified outcome")
        (Harness.Shrink.fingerprint b)
        (Harness.Shrink.fingerprint a))
    resumed.R.entries reference.R.entries;
  Alcotest.(check int) "same exit code" (R.exit_code reference)
    (R.exit_code resumed);
  (* at most one item was lost to the kill: everything journalled
     before the kill was recycled, so the resumed run re-ran exactly
     the missing ones and the journal now covers the whole battery *)
  Alcotest.(check int) "journal now complete"
    (List.length battery_items)
    (List.length (J.load path));
  Sys.remove path

let () =
  Alcotest.run "journal"
    [
      ( "lines",
        [
          Alcotest.test_case "round trip" `Quick test_round_trip;
          Alcotest.test_case "truncated tail" `Quick test_truncated_tail;
          Alcotest.test_case "empty and missing" `Quick test_empty_and_missing;
          Alcotest.test_case "duplicate ids" `Quick
            test_duplicate_ids_last_wins;
          Alcotest.test_case "writer appends" `Quick test_writer_appends;
          Alcotest.test_case "fsync writer" `Quick test_fsync_writer;
          Alcotest.test_case "truncate at every offset" `Quick
            test_truncate_every_offset;
        ] );
      ( "resume",
        [
          Alcotest.test_case "resume after SIGKILL" `Slow
            test_resume_after_sigkill;
        ] );
    ]
