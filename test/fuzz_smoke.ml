(* Crash-robustness fault injection: mutate well-formed litmus and cat
   sources (truncation, token deletion, token swaps, byte flips, line
   drops) and feed the wrecks to the toolchain.  The contract under test:

   - litmus inputs through Harness.Runner.run_item NEVER raise — every
     failure is a classified entry (parse/lex/type/lint/budget/internal);
   - Cat.parse on garbage raises only its typed Parser.Error/Lexer.Error;
   - cat sources that still parse run as models through the same fault
     barrier without escaping exceptions;
   - the explain path rides along on every check (the native explainer
     for litmus mutants, the mutated model explaining itself for cat
     mutants): explainer failures must surface as classified entries
     through the same barrier, never as escapes.

   Deterministic: a fixed Random.State seed, so a failure reproduces.
   Run directly (dune exec test/fuzz_smoke.exe) or via dune runtest. *)

let seed = [| 0x5eed; 2018 |]
let mutants_per_source = 48

(* ---- mutation operators ------------------------------------------- *)

let truncate rng s =
  if String.length s < 2 then s
  else String.sub s 0 (1 + Random.State.int rng (String.length s - 1))

let split_tokens s =
  (* whitespace-separated, keeping it simple: mutations need not be
     syntactically meaningful, only deterministic *)
  String.split_on_char ' ' s

let join_tokens = String.concat " "

let delete_token rng s =
  match split_tokens s with
  | [] | [ _ ] -> s
  | toks ->
      let i = Random.State.int rng (List.length toks) in
      join_tokens (List.filteri (fun j _ -> j <> i) toks)

let swap_tokens rng s =
  match split_tokens s with
  | [] | [ _ ] -> s
  | toks ->
      let n = List.length toks in
      let i = Random.State.int rng n and j = Random.State.int rng n in
      join_tokens
        (List.mapi
           (fun k t ->
             if k = i then List.nth toks j
             else if k = j then List.nth toks i
             else t)
           toks)

let flip_byte rng s =
  if s = "" then s
  else begin
    let b = Bytes.of_string s in
    let i = Random.State.int rng (Bytes.length b) in
    Bytes.set b i (Char.chr (Random.State.int rng 256));
    Bytes.to_string b
  end

let drop_line rng s =
  match String.split_on_char '\n' s with
  | [] | [ _ ] -> s
  | lines ->
      let i = Random.State.int rng (List.length lines) in
      String.concat "\n" (List.filteri (fun j _ -> j <> i) lines)

let mutators = [| truncate; delete_token; swap_tokens; flip_byte; drop_line |]

let mutate rng s =
  (* one to three stacked mutations *)
  let n = 1 + Random.State.int rng 3 in
  let rec go n s =
    if n = 0 then s
    else go (n - 1) (mutators.(Random.State.int rng (Array.length mutators)) rng s)
  in
  go n s

(* ---- the harness ---------------------------------------------------- *)

let limits = Exec.Budget.limits ~timeout:2.0 ~max_candidates:20_000 ()

let escaped = ref 0 (* exceptions that got past a fault barrier *)
let untyped = ref 0 (* cat parse failures outside the typed errors *)
let explained = ref 0 (* mutants whose run produced explanations *)
let total = ref 0
let by_status = Hashtbl.create 16

let record k = Hashtbl.replace by_status k (1 + try Hashtbl.find by_status k with Not_found -> 0)

let note_explained (e : Harness.Runner.entry) =
  match e.Harness.Runner.result with
  | Some r when r.Exec.Check.explanations <> [] -> incr explained
  | _ -> ()

let run_litmus_mutant src =
  incr total;
  let item =
    { Harness.Runner.id = "mutant"; source = `Text src; expected = None }
  in
  match
    Harness.Runner.run_item ~limits ~explainer:Lkmm.Explain.explainer
      ~oracle:Lkmm.oracle item
  with
  | e ->
      note_explained e;
      record
        (match e.Harness.Runner.status with
        | Harness.Runner.Pass _ -> "pass"
        | Harness.Runner.Fail _ -> "fail"
        | Harness.Runner.Gave_up _ -> "gave-up"
        | Harness.Runner.Err i -> Harness.Runner.class_to_string i.cls)
  | exception exn ->
      incr escaped;
      Printf.eprintf "ESCAPED (litmus runner): %s\ninput:\n%s\n"
        (Printexc.to_string exn) src

let sb_probe =
  (* a tiny well-formed test to exercise mutated-but-parsing cat models *)
  (Harness.Battery.find "SB+mbs").Harness.Battery.source

let run_cat_mutant src =
  incr total;
  match Cat.parse src with
  | model -> (
      record "cat-parses";
      (* the mutated model still parses: interpret it inside the fault
         barrier, where type errors must come out classified — with the
         mutated model also explaining its own verdicts, so explainer
         faults (bad relation references, broken checks) hit the same
         barrier *)
      let oracle = Cat.to_oracle ~name:"mutant" model in
      let item =
        { Harness.Runner.id = "cat-mutant"; source = `Text sb_probe;
          expected = None }
      in
      match
        Harness.Runner.run_item ~limits ~explainer:(Cat.explainer model)
          ~oracle item
      with
      | e ->
          note_explained e;
          record
            (match e.Harness.Runner.status with
            | Harness.Runner.Err i ->
                (if i.cls = Harness.Runner.Internal then
                   Printf.eprintf "INTERNAL: %s\n" i.msg);
                "cat-" ^ Harness.Runner.class_to_string i.cls
            | _ -> "cat-runs")
      | exception exn ->
          incr escaped;
          Printf.eprintf "ESCAPED (cat interp): %s\nmodel:\n%s\n"
            (Printexc.to_string exn) src)
  | exception Cat.Parser.Error (_, line) when line >= 1 -> record "cat-parse-err"
  | exception Cat.Lexer.Error (_, line) when line >= 1 -> record "cat-lex-err"
  | exception exn ->
      incr untyped;
      Printf.eprintf "UNTYPED cat parse failure: %s\ninput:\n%s\n"
        (Printexc.to_string exn) src

let () =
  let rng = Random.State.make seed in
  let litmus_bases =
    (* a slice of the battery: varied threads, fences, rmw, conditions *)
    List.filteri (fun i _ -> i mod 3 = 0) Harness.Battery.all
    |> List.map (fun e -> e.Harness.Battery.source)
  in
  let cat_bases = List.map (fun (_, _, src) -> src) Cat.Stdmodels.all in
  List.iter
    (fun src ->
      for _ = 1 to mutants_per_source do
        run_litmus_mutant (mutate rng src)
      done)
    litmus_bases;
  List.iter
    (fun src ->
      for _ = 1 to mutants_per_source do
        run_cat_mutant (mutate rng src)
      done)
    cat_bases;
  Printf.printf "fuzz_smoke: %d mutated inputs (%d with explanations)\n"
    !total !explained;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_status []
  |> List.sort compare
  |> List.iter (fun (k, v) -> Printf.printf "  %-14s %d\n" k v);
  if !total < 500 then begin
    Printf.eprintf "fuzz_smoke: FEWER THAN 500 MUTANTS (%d)\n" !total;
    exit 1
  end;
  if !escaped > 0 || !untyped > 0 then begin
    Printf.eprintf "fuzz_smoke: %d escaped exception(s), %d untyped failure(s)\n"
      !escaped !untyped;
    exit 1
  end;
  if !explained = 0 then begin
    (* the explainer must actually have run on some mutants, or the
       explain-path coverage above is vacuous *)
    Printf.eprintf "fuzz_smoke: explain path never exercised\n";
    exit 1
  end;
  print_endline "fuzz_smoke: OK (no uncaught exceptions)"
