(* Tests for the experiment harness: the battery's integrity, the Table 5
   reproduction machinery, figures, sweeps and the RCU study. *)

let test_battery_parses () =
  List.iter
    (fun (e : Harness.Battery.entry) ->
      match Harness.Battery.test_of e with
      | t -> Alcotest.(check string) "name agrees" e.name t.Litmus.Ast.name
      | exception exn ->
          Alcotest.failf "%s does not parse: %s" e.name
            (Printexc.to_string exn))
    Harness.Battery.all

let test_battery_names_unique () =
  let names = List.map (fun (e : Harness.Battery.entry) -> e.name) Harness.Battery.all in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_table5_is_paper_shape () =
  let table5 = List.filter (fun e -> e.Harness.Battery.in_table5) Harness.Battery.all in
  Alcotest.(check int) "fifteen rows" 15 (List.length table5);
  (* paper order: LB first, RWC+mbs last *)
  Alcotest.(check string) "first row" "LB"
    (List.hd table5).Harness.Battery.name;
  Alcotest.(check string) "last row" "RWC+mbs"
    (List.nth table5 14).Harness.Battery.name;
  (* RCU rows have no C11 column *)
  List.iter
    (fun (e : Harness.Battery.entry) ->
      if Litmus.Ast.has_rcu (Harness.Battery.test_of e) then
        Alcotest.(check bool) (e.name ^ " has dash in C11 column") true
          (e.c11 = None))
    table5

let test_table5_row_generation () =
  let e = Harness.Battery.find "SB" in
  let row = Harness.Table5.row_of_entry ~runs:500 ~seed:1 e in
  Alcotest.(check int) "four architectures" 4
    (List.length row.Harness.Table5.hw);
  Alcotest.(check bool) "verdict matches paper" true
    (row.Harness.Table5.lk = row.Harness.Table5.lk_expected);
  List.iter
    (fun (_, m, t) ->
      Alcotest.(check bool) "counts within runs" true (m <= t && t <= 500))
    row.Harness.Table5.hw

let test_table5_shape_checker_detects () =
  (* feed the checker a doctored row and make sure it complains *)
  let e = Harness.Battery.find "SB+mbs" in
  let row = Harness.Table5.row_of_entry ~runs:200 ~seed:1 e in
  let doctored =
    { row with Harness.Table5.hw = [ ("Power8", 5, 200) ] }
  in
  Alcotest.(check bool) "forbidden-observed detected" true
    (Harness.Table5.shape_issues ~check_observed:false [ doctored ] <> []);
  let wrong_verdict = { row with Harness.Table5.lk = Exec.Check.Allow } in
  Alcotest.(check bool) "verdict mismatch detected" true
    (Harness.Table5.shape_issues ~check_observed:false [ wrong_verdict ]
    <> [])

let test_figures_cover_paper () =
  let ids = List.map (fun f -> f.Harness.Figures.id) Harness.Figures.all in
  Alcotest.(check (list string)) "all evaluation figures"
    [ "2"; "4"; "5"; "6"; "7"; "9"; "10"; "11"; "13"; "14" ]
    ids;
  Alcotest.(check (list string)) "verdicts match paper" []
    (Harness.Figures.issues ())

let test_sweep_classify () =
  let tests =
    List.map Harness.Battery.test_of
      [ Harness.Battery.find "MP"; Harness.Battery.find "MP+wmb+rmb" ]
  in
  let s = Harness.Sweep.classify ~archs:[ Hwsim.Arch.x86 ] ~runs:100 tests in
  Alcotest.(check int) "two tests" 2 s.Harness.Sweep.n_tests;
  Alcotest.(check int) "one allowed" 1 s.Harness.Sweep.lk_allow;
  Alcotest.(check int) "one forbidden" 1 s.Harness.Sweep.lk_forbid;
  Alcotest.(check int) "both SC-forbidden" 2 s.Harness.Sweep.sc_forbid;
  Alcotest.(check int) "no unsound cells" 0
    (List.length s.Harness.Sweep.unsound)

let test_strength_issues_on_battery () =
  Alcotest.(check (list string)) "battery respects strength ordering" []
    (Harness.Sweep.strength_issues
       (List.map Harness.Battery.test_of Harness.Battery.all))

let test_rcu_study_runs () =
  let r =
    Harness.Rcu_study.run_variant ~runs:60 ~seed:5 ~variant:Kir.Rcu_impl.Full
      (Harness.Battery.find "RCU-MP")
      Hwsim.Arch.x86
  in
  Alcotest.(check int) "no forbidden outcomes" 0 r.Harness.Rcu_study.matched;
  Alcotest.(check bool) "runs completed" true (r.Harness.Rcu_study.total > 0)

let test_rcu_study_issue_detection () =
  let fake =
    {
      Harness.Rcu_study.program = "RCU-MP+rcu-impl";
      arch = "X86";
      matched = 3;
      total = 100;
      aborted = 0;
    }
  in
  Alcotest.(check bool) "faithful violation flagged" true
    (Harness.Rcu_study.issues [ fake ] <> []);
  let broken_ok = { fake with Harness.Rcu_study.program = "RCU-MP+rcu-impl-no-wait" } in
  Alcotest.(check bool) "broken variants not flagged" true
    (Harness.Rcu_study.issues [ broken_ok ] = [])

(* ------------------------------------------------------------------ *)
(* Batch runner                                                        *)
(* ------------------------------------------------------------------ *)

module R = Harness.Runner
module B = Exec.Budget

let item id source expected = { R.id; source = `Text source; expected }
let src name = (Harness.Battery.find name).Harness.Battery.source

let test_runner_statuses () =
  let report =
    R.run
      [
        item "pass" (src "SB") (Some Exec.Check.Allow);
        item "fail" (src "SB") (Some Exec.Check.Forbid);
        item "parse-err" "C broken\n{ x=0;\nP0(int *x" None;
      ]
  in
  Alcotest.(check int) "n_pass" 1 report.R.n_pass;
  Alcotest.(check int) "n_fail" 1 report.R.n_fail;
  Alcotest.(check int) "n_error" 1 report.R.n_error;
  Alcotest.(check int) "n_gave_up" 0 report.R.n_gave_up;
  List.iter2
    (fun id (e : R.entry) ->
      Alcotest.(check string) "order preserved" id e.R.item_id)
    [ "pass"; "fail"; "parse-err" ]
    report.R.entries;
  (match (List.nth report.R.entries 2).R.status with
  | R.Err { cls = R.Parse; line = Some _; _ } -> ()
  | s -> Alcotest.failf "expected parse error: %s" (Fmt.str "%a" R.pp_status s));
  (* error beats fail in the exit code *)
  Alcotest.(check int) "exit code" 2 (R.exit_code report)

let test_runner_gave_up () =
  let limits = B.limits ~max_candidates:1 () in
  let report = R.run ~limits [ item "boom" (src "SB") None ] in
  Alcotest.(check int) "n_gave_up" 1 report.R.n_gave_up;
  (match (List.hd report.R.entries).R.status with
  | R.Gave_up (B.Too_many_candidates _) -> ()
  | s -> Alcotest.failf "expected gave-up: %s" (Fmt.str "%a" R.pp_status s));
  Alcotest.(check int) "exit code 3" 3 (R.exit_code report)

let test_runner_exit_precedence () =
  let limits = B.limits ~max_candidates:1 () in
  (* fail beats gave-up *)
  let r1 =
    R.run ~limits:B.unlimited
      [ item "fail" (src "SB") (Some Exec.Check.Forbid) ]
  in
  let r2 = R.run ~limits [ item "boom" (src "SB") None ] in
  Alcotest.(check int) "fail alone" 1 (R.exit_code r1);
  Alcotest.(check int) "gave-up alone" 3 (R.exit_code r2);
  (* precedence over a mixed report: fail beats gave-up *)
  let mixed =
    {
      R.entries = r1.R.entries @ r2.R.entries;
      n_pass = 0;
      n_fail = 1;
      n_error = 0;
      n_crash = 0;
      n_gave_up = 1;
      wall = r1.R.wall +. r2.R.wall;
    }
  in
  Alcotest.(check int) "fail beats gave-up" 1 (R.exit_code mixed)

let test_runner_lint () =
  (* unbalanced RCU lock is a lint error: classified, not checked *)
  let bad =
    "C lint\n{ x=0; }\nP0(int *x) {\n  rcu_read_lock();\n  WRITE_ONCE(x, 1);\n}\nexists (x=1)"
  in
  let report = R.run [ item "lint" bad None ] in
  (match (List.hd report.R.entries).R.status with
  | R.Err { cls = R.Lint; _ } -> ()
  | s -> Alcotest.failf "expected lint error: %s" (Fmt.str "%a" R.pp_status s));
  (* with linting off the test checks normally *)
  let report = R.run ~lint:false [ item "lint" bad None ] in
  Alcotest.(check int) "lint off passes" 1 report.R.n_pass

let test_runner_json () =
  let report =
    R.run
      [ item "ok" (src "SB") None; item "bad" "not a litmus test" None ]
  in
  let json = R.to_json report in
  let contains sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length json && (String.sub json i n = sub || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun field ->
      Alcotest.(check bool) ("json has " ^ field) true (contains field))
    [
      "\"total\""; "\"entries\""; "\"status\""; "\"pass\"";
      "\"error\""; "\"class\""; "\"exit_code\""; "\"wall_s\"";
    ]

(* The acceptance scenario: an explosive generated test and a corrupted
   corpus file both complete under the runner — Unknown/Error entries,
   no run exceeding its wall-clock budget by more than 2x. *)
let test_runner_acceptance () =
  let rng = Random.State.make [| 7; 2018 |] in
  let big =
    Diygen.sample ~vocabulary:Diygen.Edge.core_vocabulary ~rng ~count:3 7
  in
  let corrupted =
    (* a battery source with its tail torn off mid-instruction *)
    let s = src "IRIW+mbs" in
    String.sub s 0 (String.length s * 2 / 3)
  in
  let timeout = 1.0 in
  let limits = B.limits ~timeout ~max_candidates:5_000 () in
  let items =
    List.mapi (fun i t -> { R.id = Printf.sprintf "gen%d" i;
                            source = `Ast t; expected = None }) big
    @ [ item "corrupted" corrupted None ]
  in
  let report = R.run ~limits items in
  Alcotest.(check int) "all items reported" (List.length items)
    (List.length report.R.entries);
  Alcotest.(check int) "nothing crashed the batch" 0
    (List.length
       (List.filter
          (fun (e : R.entry) ->
            match e.R.status with
            | R.Err { cls = R.Internal; _ } -> true
            | _ -> false)
          report.R.entries));
  List.iter
    (fun (e : R.entry) ->
      Alcotest.(check bool) (e.R.item_id ^ " within 2x budget") true
        (e.R.time <= 2.0 *. timeout))
    report.R.entries;
  (* the corrupted file is an Error entry, not a crash *)
  match (List.nth report.R.entries 3).R.status with
  | R.Err { cls = R.Parse | R.Lex; _ } -> ()
  | s -> Alcotest.failf "corrupted file: %s" (Fmt.str "%a" R.pp_status s)

let () =
  Alcotest.run "harness"
    [
      ( "battery",
        [
          Alcotest.test_case "all parse" `Quick test_battery_parses;
          Alcotest.test_case "unique names" `Quick test_battery_names_unique;
          Alcotest.test_case "table5 shape" `Quick test_table5_is_paper_shape;
        ] );
      ( "table5",
        [
          Alcotest.test_case "row generation" `Quick
            test_table5_row_generation;
          Alcotest.test_case "shape checker" `Quick
            test_table5_shape_checker_detects;
        ] );
      ( "figures",
        [ Alcotest.test_case "coverage" `Quick test_figures_cover_paper ] );
      ( "sweep",
        [
          Alcotest.test_case "classify" `Quick test_sweep_classify;
          Alcotest.test_case "strength on battery" `Quick
            test_strength_issues_on_battery;
        ] );
      ( "runner",
        [
          Alcotest.test_case "statuses" `Quick test_runner_statuses;
          Alcotest.test_case "gave up" `Quick test_runner_gave_up;
          Alcotest.test_case "exit precedence" `Quick
            test_runner_exit_precedence;
          Alcotest.test_case "lint" `Quick test_runner_lint;
          Alcotest.test_case "json" `Quick test_runner_json;
          Alcotest.test_case "acceptance" `Slow test_runner_acceptance;
        ] );
      ( "rcu-study",
        [
          Alcotest.test_case "runs" `Quick test_rcu_study_runs;
          Alcotest.test_case "issue detection" `Quick
            test_rcu_study_issue_detection;
        ] );
    ]
