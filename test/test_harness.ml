(* Tests for the experiment harness: the battery's integrity, the Table 5
   reproduction machinery, figures, sweeps and the RCU study. *)

let test_battery_parses () =
  List.iter
    (fun (e : Harness.Battery.entry) ->
      match Harness.Battery.test_of e with
      | t -> Alcotest.(check string) "name agrees" e.name t.Litmus.Ast.name
      | exception exn ->
          Alcotest.failf "%s does not parse: %s" e.name
            (Printexc.to_string exn))
    Harness.Battery.all

let test_battery_names_unique () =
  let names = List.map (fun (e : Harness.Battery.entry) -> e.name) Harness.Battery.all in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_table5_is_paper_shape () =
  let table5 = List.filter (fun e -> e.Harness.Battery.in_table5) Harness.Battery.all in
  Alcotest.(check int) "fifteen rows" 15 (List.length table5);
  (* paper order: LB first, RWC+mbs last *)
  Alcotest.(check string) "first row" "LB"
    (List.hd table5).Harness.Battery.name;
  Alcotest.(check string) "last row" "RWC+mbs"
    (List.nth table5 14).Harness.Battery.name;
  (* RCU rows have no C11 column *)
  List.iter
    (fun (e : Harness.Battery.entry) ->
      if Litmus.Ast.has_rcu (Harness.Battery.test_of e) then
        Alcotest.(check bool) (e.name ^ " has dash in C11 column") true
          (e.c11 = None))
    table5

let test_table5_row_generation () =
  let e = Harness.Battery.find "SB" in
  let row = Harness.Table5.row_of_entry ~runs:500 ~seed:1 e in
  Alcotest.(check int) "four architectures" 4
    (List.length row.Harness.Table5.hw);
  Alcotest.(check bool) "verdict matches paper" true
    (row.Harness.Table5.lk = row.Harness.Table5.lk_expected);
  List.iter
    (fun (_, m, t) ->
      Alcotest.(check bool) "counts within runs" true (m <= t && t <= 500))
    row.Harness.Table5.hw

let test_table5_shape_checker_detects () =
  (* feed the checker a doctored row and make sure it complains *)
  let e = Harness.Battery.find "SB+mbs" in
  let row = Harness.Table5.row_of_entry ~runs:200 ~seed:1 e in
  let doctored =
    { row with Harness.Table5.hw = [ ("Power8", 5, 200) ] }
  in
  Alcotest.(check bool) "forbidden-observed detected" true
    (Harness.Table5.shape_issues ~check_observed:false [ doctored ] <> []);
  let wrong_verdict = { row with Harness.Table5.lk = Exec.Check.Allow } in
  Alcotest.(check bool) "verdict mismatch detected" true
    (Harness.Table5.shape_issues ~check_observed:false [ wrong_verdict ]
    <> [])

let test_figures_cover_paper () =
  let ids = List.map (fun f -> f.Harness.Figures.id) Harness.Figures.all in
  Alcotest.(check (list string)) "all evaluation figures"
    [ "2"; "4"; "5"; "6"; "7"; "9"; "10"; "11"; "13"; "14" ]
    ids;
  Alcotest.(check (list string)) "verdicts match paper" []
    (Harness.Figures.issues ())

let test_sweep_classify () =
  let tests =
    List.map Harness.Battery.test_of
      [ Harness.Battery.find "MP"; Harness.Battery.find "MP+wmb+rmb" ]
  in
  let s = Harness.Sweep.classify ~archs:[ Hwsim.Arch.x86 ] ~runs:100 tests in
  Alcotest.(check int) "two tests" 2 s.Harness.Sweep.n_tests;
  Alcotest.(check int) "one allowed" 1 s.Harness.Sweep.lk_allow;
  Alcotest.(check int) "one forbidden" 1 s.Harness.Sweep.lk_forbid;
  Alcotest.(check int) "both SC-forbidden" 2 s.Harness.Sweep.sc_forbid;
  Alcotest.(check int) "no unsound cells" 0
    (List.length s.Harness.Sweep.unsound)

let test_strength_issues_on_battery () =
  Alcotest.(check (list string)) "battery respects strength ordering" []
    (Harness.Sweep.strength_issues
       (List.map Harness.Battery.test_of Harness.Battery.all))

let test_rcu_study_runs () =
  let r =
    Harness.Rcu_study.run_variant ~runs:60 ~seed:5 ~variant:Kir.Rcu_impl.Full
      (Harness.Battery.find "RCU-MP")
      Hwsim.Arch.x86
  in
  Alcotest.(check int) "no forbidden outcomes" 0 r.Harness.Rcu_study.matched;
  Alcotest.(check bool) "runs completed" true (r.Harness.Rcu_study.total > 0)

let test_rcu_study_issue_detection () =
  let fake =
    {
      Harness.Rcu_study.program = "RCU-MP+rcu-impl";
      arch = "X86";
      matched = 3;
      total = 100;
      aborted = 0;
    }
  in
  Alcotest.(check bool) "faithful violation flagged" true
    (Harness.Rcu_study.issues [ fake ] <> []);
  let broken_ok = { fake with Harness.Rcu_study.program = "RCU-MP+rcu-impl-no-wait" } in
  Alcotest.(check bool) "broken variants not flagged" true
    (Harness.Rcu_study.issues [ broken_ok ] = [])

let () =
  Alcotest.run "harness"
    [
      ( "battery",
        [
          Alcotest.test_case "all parse" `Quick test_battery_parses;
          Alcotest.test_case "unique names" `Quick test_battery_names_unique;
          Alcotest.test_case "table5 shape" `Quick test_table5_is_paper_shape;
        ] );
      ( "table5",
        [
          Alcotest.test_case "row generation" `Quick
            test_table5_row_generation;
          Alcotest.test_case "shape checker" `Quick
            test_table5_shape_checker_detects;
        ] );
      ( "figures",
        [ Alcotest.test_case "coverage" `Quick test_figures_cover_paper ] );
      ( "sweep",
        [
          Alcotest.test_case "classify" `Quick test_sweep_classify;
          Alcotest.test_case "strength on battery" `Quick
            test_strength_issues_on_battery;
        ] );
      ( "rcu-study",
        [
          Alcotest.test_case "runs" `Quick test_rcu_study_runs;
          Alcotest.test_case "issue detection" `Quick
            test_rcu_study_issue_detection;
        ] );
    ]
