(* Tests for the litmus language: lexer, parser, printer round-trips,
   and the static helpers (globals, addresses, init values). *)

open Litmus.Ast

let parse = Litmus.parse

(* ------------------------------------------------------------------ *)
(* Parsing basics                                                      *)
(* ------------------------------------------------------------------ *)

let mp_src =
  {|C MP
{ x=0; y=0; }
P0(int *x, int *y) {
  WRITE_ONCE(x, 1);
  WRITE_ONCE(y, 1);
}
P1(int *x, int *y) {
  int r1 = READ_ONCE(y);
  int r2 = READ_ONCE(x);
}
exists (1:r1=1 /\ 1:r2=0)|}

let test_parse_mp () =
  let t = parse mp_src in
  Alcotest.(check string) "name" "MP" t.name;
  Alcotest.(check int) "threads" 2 (Array.length t.threads);
  Alcotest.(check int) "P0 instrs" 2 (List.length t.threads.(0));
  Alcotest.(check int) "P1 instrs" 2 (List.length t.threads.(1));
  match t.threads.(1) with
  | [ Read (R_once, "r1", Sym "y"); Read (R_once, "r2", Sym "x") ] -> ()
  | _ -> Alcotest.fail "P1 shape"

let test_parse_star_locations () =
  (* herd writes locations as *x; both forms must parse identically *)
  let t1 = parse "C a\n{ }\nP0(int *x) { WRITE_ONCE(*x, 1); }\nexists (x=1)" in
  let t2 = parse "C a\n{ }\nP0(int *x) { WRITE_ONCE(x, 1); }\nexists (x=1)" in
  Alcotest.(check bool) "same instrs" true (t1.threads = t2.threads)

let test_parse_fences () =
  let t =
    parse
      {|C f
{ }
P0(int *x) {
  smp_mb();
  smp_rmb();
  smp_wmb();
  smp_read_barrier_depends();
  rcu_read_lock();
  rcu_read_unlock();
  synchronize_rcu();
}
exists (x=0)|}
  in
  let expected =
    [
      Fence F_mb; Fence F_rmb; Fence F_wmb; Fence F_rb_dep; Fence F_rcu_lock;
      Fence F_rcu_unlock; Fence F_sync_rcu;
    ]
  in
  Alcotest.(check bool) "all fences" true (t.threads.(0) = expected)

let test_parse_acquire_release () =
  let t =
    parse
      {|C ra
{ }
P0(int *x, int *y) {
  int r1 = smp_load_acquire(y);
  smp_store_release(x, 2);
  rcu_assign_pointer(y, 3);
}
exists (x=2)|}
  in
  match t.threads.(0) with
  | [
   Read (R_acquire, "r1", Sym "y");
   Write (W_release, Sym "x", Const 2);
   Write (W_release, Sym "y", Const 3);
  ] ->
      ()
  | _ -> Alcotest.fail "acquire/release shape"

let test_parse_xchg () =
  let t =
    parse
      {|C xc
{ }
P0(int *x) {
  int r1 = xchg(x, 1);
  int r2 = xchg_relaxed(x, 2);
  int r3 = xchg_acquire(x, 3);
  int r4 = xchg_release(x, 4);
}
exists (x=4)|}
  in
  match t.threads.(0) with
  | [
   Xchg (X_full, "r1", Sym "x", Const 1);
   Xchg (X_relaxed, "r2", Sym "x", Const 2);
   Xchg (X_acquire, "r3", Sym "x", Const 3);
   Xchg (X_release, "r4", Sym "x", Const 4);
  ] ->
      ()
  | _ -> Alcotest.fail "xchg shape"

let test_parse_atomics () =
  let t =
    parse
      {|C at
{ c=0; }
P0(int *c) {
  int r1 = atomic_add_return(2, c);
  int r2 = cmpxchg(c, 2, 5);
  atomic_add(3, c);
  atomic_inc(c);
  atomic_dec(c);
}
exists (0:r1=2)|}
  in
  match t.threads.(0) with
  | [
   Atomic_add_return (X_full, "r1", Sym "c", Const 2);
   Cmpxchg (X_full, "r2", Sym "c", Const 2, Const 5);
   Atomic_add (Sym "c", Const 3);
   Atomic_add (Sym "c", Const 1);
   Atomic_add (Sym "c", Const (-1));
  ] ->
      ()
  | _ -> Alcotest.fail "atomic ops shape"

let test_parse_deref_register () =
  let t =
    parse
      {|C dr
{ y=&z; z=0; }
P0(int *y) {
  int r1 = READ_ONCE(y);
  int r2 = READ_ONCE(*r1);
}
exists (0:r2=0)|}
  in
  match t.threads.(0) with
  | [ Read (R_once, "r1", Sym "y"); Read (R_once, "r2", Deref "r1") ] -> ()
  | _ -> Alcotest.fail "deref shape"

let test_parse_if_else () =
  let t =
    parse
      {|C br
{ }
P0(int *x, int *y) {
  int r1 = READ_ONCE(x);
  if (r1 == 1) {
    WRITE_ONCE(y, 1);
  } else {
    WRITE_ONCE(y, 2);
  }
}
exists (y=1)|}
  in
  match t.threads.(0) with
  | [ Read _; If (Binop (Eq, Reg "r1", Const 1), [ Write _ ], [ Write _ ]) ]
    ->
      ()
  | _ -> Alcotest.fail "if shape"

let test_parse_quantifiers () =
  let base = "C q\n{ }\nP0(int *x) { WRITE_ONCE(x, 1); }\n" in
  Alcotest.(check bool) "exists" true
    ((parse (base ^ "exists (x=1)")).quant = Q_exists);
  Alcotest.(check bool) "~exists" true
    ((parse (base ^ "~exists (x=1)")).quant = Q_not_exists);
  Alcotest.(check bool) "forall" true
    ((parse (base ^ "forall (x=1)")).quant = Q_forall)

let test_parse_cond_operators () =
  let t =
    parse
      "C c\n{ }\nP0(int *x) { int r1 = READ_ONCE(x); }\n\
       exists (0:r1=1 \\/ ~(x=2 /\\ 0:r1=0))"
  in
  match t.cond with
  | Or (Atom (Reg_eq (0, "r1", VInt 1)), Not (And (_, _))) -> ()
  | _ -> Alcotest.fail "condition shape"

let test_parse_addr_values () =
  let t =
    parse "C a\n{ y=&z; }\nP0(int *y) { WRITE_ONCE(y, &w); }\nexists (y=&w)"
  in
  Alcotest.(check bool) "init &z" true (List.assoc "y" t.init = VAddr "z");
  match (t.threads.(0), t.cond) with
  | [ Write (W_once, Sym "y", Addr "w") ], Atom (Mem_eq ("y", VAddr "w")) ->
      ()
  | _ -> Alcotest.fail "address values"

let test_parse_errors () =
  let bad src =
    match parse src with
    | exception (Litmus.Parser.Error _ | Litmus.Lexer.Error _) -> true
    | _ -> false
  in
  Alcotest.(check bool) "no header" true (bad "P0(int *x) { }");
  Alcotest.(check bool) "unknown register" true
    (bad "C t\n{ }\nP0(int *x) { WRITE_ONCE(x, r9); }\nexists (x=0)");
  Alcotest.(check bool) "missing cond" true
    (bad "C t\n{ }\nP0(int *x) { WRITE_ONCE(x, 1); }");
  Alcotest.(check bool) "reused location without star" true
    (bad "C t\n{ }\nP0(int *x) { int r = READ_ONCE(x); int s = READ_ONCE(r); }\nexists (x=0)")

(* Typed errors must carry the line the failure occurred on: the batch
   runner's classified reports depend on these positions. *)
let test_error_positions () =
  (match
     parse "C t\n{ x=0; }\nP0(int *x) {\n  @\n}\nexists (x=0)"
   with
  | exception Litmus.Lexer.Error (msg, line) ->
      Alcotest.(check int) "lexer error line" 4 line;
      Alcotest.(check bool) "lexer error message" true
        (String.length msg > 0)
  | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "bad character accepted");
  (match
     parse "C t\n{ x=0; }\nP0(int *x) {\n  WRITE_ONCE(x, 1;\n}\nexists (x=0)"
   with
  | exception Litmus.Parser.Error (msg, line) ->
      Alcotest.(check int) "parser error line" 4 line;
      Alcotest.(check bool) "parser error message" true
        (String.length msg > 0)
  | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "unbalanced call accepted");
  match parse "C t\n{ x=0; }\nP0(int *x) {\n  int r1 = 99999999999999999999;\n}\nexists (x=0)" with
  | exception Litmus.Lexer.Error (_, line) ->
      Alcotest.(check int) "bad literal line" 4 line
  | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "overflowing literal accepted"

let test_comments () =
  let t =
    parse
      "C cm\n// line comment\n{ x=0; }\n/* block\ncomment */\nP0(int *x) {\n\
       WRITE_ONCE(x, 1); // trailing\n}\nexists (x=1)"
  in
  Alcotest.(check int) "one instr" 1 (List.length t.threads.(0))

(* ------------------------------------------------------------------ *)
(* Printer round-trip                                                  *)
(* ------------------------------------------------------------------ *)

let roundtrip_battery () =
  List.iter
    (fun (e : Harness.Battery.entry) ->
      let t = parse e.source in
      let t' = parse (Litmus.to_string t) in
      Alcotest.(check bool)
        (e.name ^ " roundtrips")
        true
        (t.threads = t'.threads && t.cond = t'.cond && t.init = t'.init
       && t.quant = t'.quant))
    Harness.Battery.all

(* ------------------------------------------------------------------ *)
(* Static helpers                                                      *)
(* ------------------------------------------------------------------ *)

let test_globals () =
  let t = parse mp_src in
  Alcotest.(check (list string)) "globals" [ "x"; "y" ] (globals t)

let test_globals_from_cond_and_addr () =
  let t =
    parse "C g\n{ }\nP0(int *a) { WRITE_ONCE(a, &b); }\nexists (c=0)"
  in
  Alcotest.(check (list string)) "globals" [ "a"; "b"; "c" ] (globals t)

let test_addresses_distinct () =
  let t = parse mp_src in
  let addrs = List.map snd (addresses t) in
  Alcotest.(check int) "distinct addresses" (List.length addrs)
    (List.length (List.sort_uniq compare addrs));
  Alcotest.(check bool) "roundtrip" true
    (List.for_all
       (fun (x, a) -> global_of_address t a = Some x)
       (addresses t))

let test_init_value () =
  let t = parse "C iv\n{ x=7; y=&x; }\nP0(int *x) { WRITE_ONCE(x, 1); }\nexists (x=1)" in
  Alcotest.(check int) "x init" 7 (init_value t "x");
  Alcotest.(check int) "y init is x's address" (address_of t "x")
    (init_value t "y");
  Alcotest.(check int) "unlisted init" 0 (init_value t "z_unlisted")

let test_has_rcu () =
  Alcotest.(check bool) "MP has no rcu" false (has_rcu (parse mp_src));
  Alcotest.(check bool) "RCU-MP has rcu" true
    (has_rcu (Harness.Battery.test_of (Harness.Battery.find "RCU-MP")));
  let nested =
    parse
      "C n\n{ }\nP0(int *x) { if (1) { rcu_read_lock(); } }\nexists (x=0)"
  in
  Alcotest.(check bool) "rcu under if" true (has_rcu nested)

(* ------------------------------------------------------------------ *)
(* Lint                                                                *)
(* ------------------------------------------------------------------ *)

let lint_errors src =
  Litmus.Lint.errors (Litmus.Lint.check_all (parse src))

let test_lint_clean_battery () =
  List.iter
    (fun (e : Harness.Battery.entry) ->
      Alcotest.(check int)
        (e.name ^ " lints clean")
        0
        (List.length (lint_errors e.source)))
    Harness.Battery.all

let test_lint_unbalanced_rcu () =
  Alcotest.(check bool) "missing unlock flagged" true
    (lint_errors
       "C t\n{ }\nP0(int *x) { rcu_read_lock(); WRITE_ONCE(x, 1); }\nexists (x=1)"
    <> []);
  Alcotest.(check bool) "stray unlock flagged" true
    (lint_errors "C t\n{ }\nP0(int *x) { rcu_read_unlock(); WRITE_ONCE(x, 1); }\nexists (x=1)"
    <> [])

let test_lint_sync_in_rscs () =
  Alcotest.(check bool) "self-deadlock flagged" true
    (lint_errors
       "C t\n{ }\nP0(int *x) { rcu_read_lock(); synchronize_rcu(); rcu_read_unlock(); }\nexists (x=0)"
    <> [])

let test_lint_condition_registers () =
  Alcotest.(check bool) "unknown register flagged" true
    (lint_errors "C t\n{ }\nP0(int *x) { WRITE_ONCE(x, 1); }\nexists (0:r9=1)"
    <> []);
  Alcotest.(check bool) "unknown thread flagged" true
    (lint_errors "C t\n{ }\nP0(int *x) { int r1 = READ_ONCE(x); }\nexists (3:r1=1)"
    <> [])

let test_lint_lock_as_data () =
  let issues =
    Litmus.Lint.check_all
      (parse
         "C t\n{ s=0; }\nP0(int *s) { spin_lock(s); WRITE_ONCE(s, 7); spin_unlock(s); }\nexists (s=0)")
  in
  Alcotest.(check bool) "mixed lock/data use warned" true
    (List.exists (fun (i : Litmus.Lint.issue) -> i.severity = `Warning) issues)

(* ------------------------------------------------------------------ *)
(* Property: builder output always reparses                            *)
(* ------------------------------------------------------------------ *)

let gen_simple_test =
  let open QCheck2.Gen in
  let loc = oneofl [ "x"; "y"; "z" ] in
  let value = int_range 0 3 in
  let instr tid k =
    oneof
      [
        map2 (fun l v -> Litmus.Build.write l v) loc value;
        map
          (fun l -> Litmus.Build.read (Printf.sprintf "r%d_%d" tid k) l)
          loc;
        oneofl [ Litmus.Build.mb; Litmus.Build.rmb; Litmus.Build.wmb ];
      ]
  in
  let thread tid =
    let* n = int_range 1 4 in
    let rec go k acc =
      if k = n then return (List.rev acc)
      else
        let* i = instr tid k in
        go (k + 1) (i :: acc)
    in
    go 0 []
  in
  let* t0 = thread 0 in
  let* t1 = thread 1 in
  return
    (Litmus.Build.make ~name:"gen" ~threads:[ t0; t1 ]
       ~exists:(Litmus.Build.m_eq "x" 0) ())

let prop_roundtrip =
  QCheck2.Test.make ~name:"generated tests print-parse roundtrip" ~count:150
    gen_simple_test (fun t ->
      let t' = parse (Litmus.to_string t) in
      t.threads = t'.threads && t.cond = t'.cond)

let () =
  Alcotest.run "litmus"
    [
      ( "parser",
        [
          Alcotest.test_case "MP" `Quick test_parse_mp;
          Alcotest.test_case "star locations" `Quick test_parse_star_locations;
          Alcotest.test_case "fences" `Quick test_parse_fences;
          Alcotest.test_case "acquire/release" `Quick
            test_parse_acquire_release;
          Alcotest.test_case "xchg" `Quick test_parse_xchg;
          Alcotest.test_case "atomics" `Quick test_parse_atomics;
          Alcotest.test_case "deref register" `Quick test_parse_deref_register;
          Alcotest.test_case "if/else" `Quick test_parse_if_else;
          Alcotest.test_case "quantifiers" `Quick test_parse_quantifiers;
          Alcotest.test_case "condition operators" `Quick
            test_parse_cond_operators;
          Alcotest.test_case "address values" `Quick test_parse_addr_values;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "error positions" `Quick test_error_positions;
          Alcotest.test_case "comments" `Quick test_comments;
        ] );
      ( "printer",
        [ Alcotest.test_case "battery roundtrip" `Quick roundtrip_battery ] );
      ( "helpers",
        [
          Alcotest.test_case "globals" `Quick test_globals;
          Alcotest.test_case "globals from cond/addr" `Quick
            test_globals_from_cond_and_addr;
          Alcotest.test_case "addresses" `Quick test_addresses_distinct;
          Alcotest.test_case "init values" `Quick test_init_value;
          Alcotest.test_case "has_rcu" `Quick test_has_rcu;
        ] );
      ( "lint",
        [
          Alcotest.test_case "battery is clean" `Quick
            test_lint_clean_battery;
          Alcotest.test_case "unbalanced rcu" `Quick test_lint_unbalanced_rcu;
          Alcotest.test_case "sync in rscs" `Quick test_lint_sync_in_rscs;
          Alcotest.test_case "condition registers" `Quick
            test_lint_condition_registers;
          Alcotest.test_case "lock as data" `Quick test_lint_lock_as_data;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_roundtrip ]);
    ]
