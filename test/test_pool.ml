(* Tests for Harness.Pool: process isolation, watchdog kills, memory
   caps, crash classification, retry/backoff and the crash exit code.

   Crashes are injected through the pool's [worker] override: a worker
   that kills its own process for designated item ids, and otherwise
   defers to the ordinary Runner.run_item.  This exercises the real
   fork/SIGKILL/reap machinery with deterministic failures. *)

module R = Harness.Runner
module P = Harness.Pool
module J = Harness.Journal
module B = Exec.Budget

let limits = B.limits ~timeout:5.0 ~max_candidates:50_000 ()
let oracle = Lkmm.oracle
let normal_worker = R.run_item ~limits ~oracle

let src name = (Harness.Battery.find name).Harness.Battery.source
let item id source expected = { R.id; source = `Text source; expected }

(* A worker that misbehaves on cue.  Runs in the forked child, so
   killing the process or spinning forever is contained by the pool. *)
let misbehaving (it : R.item) =
  match it.R.id with
  | "segv" ->
      Unix.kill (Unix.getpid ()) Sys.sigsegv;
      assert false
  | "loop" ->
      (* an allocation-free infinite loop: no budget tick, no Gc alarm;
         only the watchdog can stop it *)
      let rec spin () : R.entry = spin () in
      spin ()
  | "oom" ->
      let rec eat acc : R.entry = eat (Bytes.create (1 lsl 20) :: acc) in
      eat []
  | _ -> normal_worker it

let config jobs =
  { P.default with P.jobs; limits; backoff = 0.01 }

let find_entry report id =
  List.find (fun (e : R.entry) -> e.R.item_id = id) report.R.entries

let test_crash_contained () =
  let report =
    P.run
      ~config:(config 2)
      ~worker:misbehaving ~oracle
      [
        item "ok1" (src "SB") (Some Exec.Check.Allow);
        item "segv" (src "SB") None;
        item "ok2" (src "MP+wmb+rmb") (Some Exec.Check.Forbid);
      ]
  in
  Alcotest.(check int) "both healthy items passed" 2 report.R.n_pass;
  Alcotest.(check int) "one crash" 1 report.R.n_crash;
  Alcotest.(check int) "no plain errors" 0 report.R.n_error;
  (match (find_entry report "segv").R.status with
  | R.Err { cls = R.Crash s; _ } ->
      Alcotest.(check int) "signal recorded" Sys.sigsegv s
  | s -> Alcotest.failf "expected crash entry: %a" R.pp_status s);
  Alcotest.(check bool) "deterministic crash was retried" true
    (find_entry report "segv").R.retried;
  Alcotest.(check int) "crash exit code" 4 (R.exit_code report)

let test_order_preserved () =
  let ids = [ "d"; "c"; "b"; "a" ] in
  let report =
    P.run ~config:(config 4) ~oracle
      (List.map (fun id -> item id (src "SB") None) ids)
  in
  Alcotest.(check (list string)) "entries in item order" ids
    (List.map (fun (e : R.entry) -> e.R.item_id) report.R.entries)

let test_watchdog_kills_loop () =
  let cfg =
    { P.default with P.jobs = 2; limits = B.limits ~timeout:0.2 ();
      backoff = 0.01 }
  in
  let t0 = Unix.gettimeofday () in
  let report =
    P.run ~config:cfg ~worker:misbehaving ~oracle
      [ item "loop" (src "SB") None; item "ok" (src "SB") None ]
  in
  let wall = Unix.gettimeofday () -. t0 in
  (match (find_entry report "loop").R.status with
  | R.Gave_up (B.Timed_out _) -> ()
  | s -> Alcotest.failf "expected watchdog timeout: %a" R.pp_status s);
  Alcotest.(check int) "healthy item passed" 1 report.R.n_pass;
  Alcotest.(check int) "budget exit code" 3 (R.exit_code report);
  (* watchdog = 2 * 0.2 + 1 = 1.4s; well under the 5s this would hang
     without the watchdog (the loop never returns) *)
  Alcotest.(check bool) "killed promptly" true (wall < 4.0)

let test_mem_cap_contains_oom () =
  let cfg =
    { P.default with P.jobs = 1; limits = B.limits ~timeout:10.0 ();
      mem_limit_mb = Some 32 }
  in
  let report =
    P.run ~config:cfg ~worker:misbehaving ~oracle
      [ item "oom" (src "SB") None; item "ok" (src "SB") None ]
  in
  (match (find_entry report "oom").R.status with
  | R.Gave_up (B.Heap_exceeded 32) -> ()
  | s -> Alcotest.failf "expected heap cap: %a" R.pp_status s);
  Alcotest.(check int) "healthy item passed" 1 report.R.n_pass

(* A flaky crash: the first attempt dies, the retry succeeds.  The
   cross-attempt state lives in the filesystem because each attempt is
   a fresh process. *)
let test_flaky_crash_retried () =
  let marker = Filename.temp_file "pool_flaky" ".marker" in
  Sys.remove marker;
  let flaky (it : R.item) =
    match it.R.id with
    | "flaky" ->
        if not (Sys.file_exists marker) then begin
          let oc = open_out marker in
          close_out oc;
          Unix.kill (Unix.getpid ()) Sys.sigsegv
        end;
        normal_worker it
    | _ -> normal_worker it
  in
  let report =
    P.run ~config:(config 1) ~worker:flaky ~oracle
      [ item "flaky" (src "SB") (Some Exec.Check.Allow) ]
  in
  if Sys.file_exists marker then Sys.remove marker;
  let e = find_entry report "flaky" in
  (match e.R.status with
  | R.Pass _ -> ()
  | s -> Alcotest.failf "expected pass after retry: %a" R.pp_status s);
  Alcotest.(check bool) "marked as retried" true e.R.retried;
  Alcotest.(check int) "no crash in the final report" 0 report.R.n_crash;
  Alcotest.(check int) "clean exit code" 0 (R.exit_code report)

let test_crash_beats_error_exit_code () =
  let report =
    P.run ~config:(config 2) ~worker:misbehaving ~oracle
      [
        item "segv" (src "SB") None;
        item "parse-err" "C broken\n{ x=0;\nP0(int *x" None;
        item "fail" (src "SB") (Some Exec.Check.Forbid);
      ]
  in
  Alcotest.(check int) "crash counted" 1 report.R.n_crash;
  Alcotest.(check int) "error counted" 1 report.R.n_error;
  Alcotest.(check int) "fail counted" 1 report.R.n_fail;
  Alcotest.(check int) "crash > error > fail" 4 (R.exit_code report)

(* The default worker: no injection, real checking in real workers,
   agreeing with the in-process runner on the same items. *)
let test_agrees_with_runner () =
  let items =
    [
      item "SB" (src "SB") (Some Exec.Check.Allow);
      item "MP+wmb+rmb" (src "MP+wmb+rmb") (Some Exec.Check.Forbid);
      item "bad" "garbage input" None;
    ]
  in
  let pooled = P.run ~config:(config 2) ~oracle items in
  let inproc = R.run ~limits items in
  List.iter2
    (fun (a : R.entry) (b : R.entry) ->
      Alcotest.(check string)
        (a.R.item_id ^ " same classified outcome")
        (Harness.Shrink.fingerprint b)
        (Harness.Shrink.fingerprint a))
    pooled.R.entries inproc.R.entries;
  Alcotest.(check int) "same exit code" (R.exit_code inproc)
    (R.exit_code pooled)

(* ------------------------------------------------------------------ *)
(* Graceful drain on SIGTERM                                           *)
(* ------------------------------------------------------------------ *)

let count_lines path =
  if not (Sys.file_exists path) then 0
  else begin
    let ic = open_in path in
    let k = ref 0 in
    (try
       while true do
         ignore (input_line ic);
         incr k
       done
     with End_of_file -> ());
    close_in ic;
    !k
  end

let wait_for_lines path n deadline =
  let rec go () =
    if count_lines path >= n then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf 0.01;
      go ()
    end
  in
  go ()

(* SIGTERM a -j 2 run mid-corpus: the pool must stop dispatching, reap
   what is in flight, journal it, and exit 143 — leaving a journal a
   resumed run completes from. *)
let test_sigterm_drains_journal () =
  let path = Filename.temp_file "pool_drain" ".jsonl" in
  Sys.remove path;
  let battery =
    List.concat_map
      (fun n -> [ item (n ^ "/SB") (src "SB") (Some Exec.Check.Allow) ])
      [ "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h" ]
  in
  let cfg = { P.default with P.jobs = 2; limits; backoff = 0.01 } in
  (* each item sleeps, so SIGTERM lands mid-corpus with items in flight *)
  let slow (it : R.item) =
    Unix.sleepf 0.15;
    normal_worker it
  in
  flush stdout;
  flush stderr;
  let child =
    match Unix.fork () with
    | 0 ->
        (* the drain path calls exit itself; 0 would mean it didn't *)
        (try ignore (P.run ~config:cfg ~worker:slow ~journal:path ~oracle battery)
         with _ -> ());
        Unix._exit 0
    | pid -> pid
  in
  let got_two = wait_for_lines path 2 (Unix.gettimeofday () +. 20.) in
  Unix.kill child Sys.sigterm;
  let _, status = Unix.waitpid [] child in
  Alcotest.(check bool) "journal grew before the signal" true got_two;
  (match status with
  | Unix.WEXITED 143 -> ()
  | Unix.WEXITED n -> Alcotest.failf "expected exit 143, got %d" n
  | Unix.WSIGNALED s -> Alcotest.failf "died on signal %d instead of draining" s
  | Unix.WSTOPPED _ -> Alcotest.fail "stopped");
  (* every journalled line is a complete, well-formed entry *)
  let drained = J.load path in
  let n_drained = List.length drained in
  Alcotest.(check bool) "partial but non-empty journal" true
    (n_drained >= 2 && n_drained < List.length battery);
  List.iter
    (fun (e : R.entry) ->
      match e.R.status with
      | R.Pass _ -> ()
      | s -> Alcotest.failf "%s drained as %a" e.R.item_id R.pp_status s)
    drained;
  (* the journal resumes: only the missing items re-run, the report is
     the uninterrupted one *)
  let resumed = P.run ~config:cfg ~journal:path ~resume:path ~oracle battery in
  Alcotest.(check int) "all items reported" (List.length battery)
    (List.length resumed.R.entries);
  Alcotest.(check int) "all passed" (List.length battery) resumed.R.n_pass;
  Alcotest.(check int) "journal now complete" (List.length battery)
    (List.length (J.load path));
  Sys.remove path

let () =
  Alcotest.run "pool"
    [
      ( "isolation",
        [
          Alcotest.test_case "crash contained" `Quick test_crash_contained;
          Alcotest.test_case "order preserved" `Quick test_order_preserved;
          Alcotest.test_case "watchdog kills loop" `Slow
            test_watchdog_kills_loop;
          Alcotest.test_case "mem cap contains OOM" `Slow
            test_mem_cap_contains_oom;
        ] );
      ( "retry",
        [
          Alcotest.test_case "flaky crash retried" `Quick
            test_flaky_crash_retried;
        ] );
      ( "drain",
        [
          Alcotest.test_case "SIGTERM drains and journal resumes" `Slow
            test_sigterm_drains_journal;
        ] );
      ( "policy",
        [
          Alcotest.test_case "crash beats error" `Quick
            test_crash_beats_error_exit_code;
          Alcotest.test_case "agrees with runner" `Quick
            test_agrees_with_runner;
        ] );
    ]
