(* Unit and property tests for the relation algebra. *)

module R = Rel
module Iset = Rel.Iset

let rel = Alcotest.testable R.pp R.equal

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gen_rel =
  (* Relations over a universe of 6 events. *)
  let open QCheck2.Gen in
  let pair = tup2 (int_range 0 5) (int_range 0 5) in
  map R.of_list (list_size (int_range 0 12) pair)

let universe = Iset.of_range 0 5

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)
(* ------------------------------------------------------------------ *)

let test_seq () =
  let r1 = R.of_list [ (0, 1); (1, 2) ] in
  let r2 = R.of_list [ (1, 3); (2, 4) ] in
  Alcotest.check rel "seq" (R.of_list [ (0, 3); (1, 4) ]) (R.seq r1 r2)

let test_seq_empty () =
  let r = R.of_list [ (0, 1) ] in
  Alcotest.check rel "seq with empty" R.empty (R.seq r R.empty);
  Alcotest.check rel "empty with seq" R.empty (R.seq R.empty r)

let test_inverse () =
  let r = R.of_list [ (0, 1); (2, 3) ] in
  Alcotest.check rel "inverse" (R.of_list [ (1, 0); (3, 2) ]) (R.inverse r)

let test_transitive_closure () =
  let r = R.of_list [ (0, 1); (1, 2); (2, 3) ] in
  let expected =
    R.of_list [ (0, 1); (1, 2); (2, 3); (0, 2); (1, 3); (0, 3) ]
  in
  Alcotest.check rel "chain closure" expected (R.transitive_closure r)

let test_acyclic () =
  Alcotest.(check bool) "chain is acyclic" true
    (R.is_acyclic (R.of_list [ (0, 1); (1, 2) ]));
  Alcotest.(check bool) "2-cycle is cyclic" false
    (R.is_acyclic (R.of_list [ (0, 1); (1, 0) ]));
  Alcotest.(check bool) "self-loop is cyclic" false
    (R.is_acyclic (R.of_list [ (3, 3) ]));
  Alcotest.(check bool) "empty is acyclic" true (R.is_acyclic R.empty)

let test_find_cycle () =
  (match R.find_cycle (R.of_list [ (0, 1); (1, 2); (2, 0); (4, 4) ]) with
  | None -> Alcotest.fail "expected a cycle"
  | Some path ->
      Alcotest.(check int) "shortest cycle is the self-loop" 2
        (List.length path));
  Alcotest.(check bool) "acyclic has no cycle" true
    (R.find_cycle (R.of_list [ (0, 1); (1, 2) ]) = None)

let test_brackets () =
  let s = Iset.of_list [ 0; 2 ] in
  let r = R.of_list [ (0, 1); (2, 3); (1, 2) ] in
  Alcotest.check rel "[S];r keeps sources in S"
    (R.of_list [ (0, 1); (2, 3) ])
    (R.seq (R.id_of_set s) r)

let test_cartesian () =
  let s1 = Iset.of_list [ 0; 1 ] and s2 = Iset.of_list [ 2 ] in
  Alcotest.check rel "product" (R.of_list [ (0, 2); (1, 2) ])
    (R.cartesian s1 s2)

let test_topological_sort () =
  let r = R.of_list [ (2, 1); (1, 0) ] in
  (match R.topological_sort ~universe:(Iset.of_list [ 0; 1; 2 ]) r with
  | Some [ 2; 1; 0 ] -> ()
  | Some other ->
      Alcotest.failf "bad topo order: %a" Fmt.(Dump.list int) other
  | None -> Alcotest.fail "expected an order");
  Alcotest.(check bool) "cyclic has no topo sort" true
    (R.topological_sort ~universe:(Iset.of_list [ 0; 1 ])
       (R.of_list [ (0, 1); (1, 0) ])
    = None)

let test_linear_extensions () =
  let exts = R.linear_extensions [ 0; 1; 2 ] in
  Alcotest.(check int) "3! total orders" 6 (List.length exts);
  List.iter
    (fun r ->
      Alcotest.(check bool) "each is total" true
        (R.cardinal r = 3 && R.is_acyclic r))
    exts

let test_linear_extensions_duplicates () =
  (* A repeated element used to be dropped wholesale (removal filtered by
     value, not position): [0;1;1] yielded the 2 extensions of [0;1].
     Positional removal keeps the multiset: 3! arrangements, each seeing
     both copies of 1 and hence the (1,1) pair. *)
  let exts = R.linear_extensions [ 0; 1; 1 ] in
  Alcotest.(check int) "multiset permutation count" 6 (List.length exts);
  List.iter
    (fun r ->
      Alcotest.(check bool) "duplicate element is retained" true
        (R.mem 1 1 r && Iset.equal (R.field r) (Iset.of_list [ 0; 1 ])))
    exts

let test_restrict () =
  let r = R.of_list [ (0, 1); (1, 2); (4, 5) ] in
  Alcotest.check rel "restrict"
    (R.of_list [ (0, 1); (1, 2) ])
    (R.restrict (Iset.of_list [ 0; 1; 2 ]) r)

(* ------------------------------------------------------------------ *)
(* Property tests                                                      *)
(* ------------------------------------------------------------------ *)

let prop_tc_idempotent =
  QCheck2.Test.make ~name:"transitive closure is idempotent" ~count:200
    gen_rel (fun r ->
      let tc = R.transitive_closure r in
      R.equal tc (R.transitive_closure tc))

let prop_tc_contains =
  QCheck2.Test.make ~name:"r subset of r+" ~count:200 gen_rel (fun r ->
      R.subset r (R.transitive_closure r))

let prop_tc_transitive =
  QCheck2.Test.make ~name:"r+ is transitive" ~count:200 gen_rel (fun r ->
      let tc = R.transitive_closure r in
      R.subset (R.seq tc tc) tc)

let prop_seq_assoc =
  QCheck2.Test.make ~name:"seq is associative" ~count:200
    QCheck2.Gen.(tup3 gen_rel gen_rel gen_rel)
    (fun (a, b, c) -> R.equal (R.seq (R.seq a b) c) (R.seq a (R.seq b c)))

let prop_seq_distributes_union =
  QCheck2.Test.make ~name:"seq distributes over union" ~count:200
    QCheck2.Gen.(tup3 gen_rel gen_rel gen_rel)
    (fun (a, b, c) ->
      R.equal (R.seq a (R.union b c)) (R.union (R.seq a b) (R.seq a c)))

let prop_inverse_involution =
  QCheck2.Test.make ~name:"inverse is an involution" ~count:200 gen_rel
    (fun r -> R.equal r (R.inverse (R.inverse r)))

let prop_inverse_seq =
  QCheck2.Test.make ~name:"(a;b)^-1 = b^-1;a^-1" ~count:200
    QCheck2.Gen.(tup2 gen_rel gen_rel)
    (fun (a, b) ->
      R.equal (R.inverse (R.seq a b)) (R.seq (R.inverse b) (R.inverse a)))

let prop_acyclic_iff_topo =
  QCheck2.Test.make ~name:"acyclic iff topological sort exists" ~count:200
    gen_rel (fun r ->
      R.is_acyclic r = (R.topological_sort ~universe r <> None))

let prop_topo_respects_order =
  QCheck2.Test.make ~name:"topological sort respects every edge" ~count:300
    gen_rel (fun r ->
      match R.topological_sort ~universe r with
      | None -> not (R.is_acyclic (R.restrict universe r))
      | Some order ->
          let pos x =
            let rec go i = function
              | [] -> -1
              | y :: rest -> if y = x then i else go (i + 1) rest
            in
            go 0 order
          in
          R.for_all
            (fun a b ->
              (not (Iset.mem a universe && Iset.mem b universe))
              || pos a < pos b)
            r)

let prop_find_cycle_sound =
  QCheck2.Test.make ~name:"find_cycle returns a real cycle" ~count:200 gen_rel
    (fun r ->
      match R.find_cycle r with
      | None -> R.is_acyclic r
      | Some path ->
          let rec edges = function
            | x :: (y :: _ as rest) -> R.mem x y r && edges rest
            | _ -> true
          in
          List.length path >= 2
          && List.hd path = List.nth path (List.length path - 1)
          && edges path)

let prop_complement =
  QCheck2.Test.make ~name:"complement partitions the full product" ~count:200
    gen_rel (fun r ->
      let r = R.restrict universe r in
      let c = R.complement ~universe r in
      R.is_empty (R.inter r c)
      && R.equal (R.union r c) (R.cartesian universe universe))

let prop_star_fixed_point =
  QCheck2.Test.make ~name:"r* = id | r;r*" ~count:200 gen_rel (fun r ->
      let r = R.restrict universe r in
      let star = R.reflexive_transitive_closure ~universe r in
      R.equal star (R.union (R.id_of_set universe) (R.seq r star)))

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_tc_idempotent;
      prop_tc_contains;
      prop_tc_transitive;
      prop_seq_assoc;
      prop_seq_distributes_union;
      prop_inverse_involution;
      prop_inverse_seq;
      prop_acyclic_iff_topo;
      prop_topo_respects_order;
      prop_find_cycle_sound;
      prop_complement;
      prop_star_fixed_point;
    ]

let () =
  Alcotest.run "rel"
    [
      ( "unit",
        [
          Alcotest.test_case "seq" `Quick test_seq;
          Alcotest.test_case "seq_empty" `Quick test_seq_empty;
          Alcotest.test_case "inverse" `Quick test_inverse;
          Alcotest.test_case "transitive_closure" `Quick
            test_transitive_closure;
          Alcotest.test_case "acyclic" `Quick test_acyclic;
          Alcotest.test_case "find_cycle" `Quick test_find_cycle;
          Alcotest.test_case "brackets" `Quick test_brackets;
          Alcotest.test_case "cartesian" `Quick test_cartesian;
          Alcotest.test_case "topological_sort" `Quick test_topological_sort;
          Alcotest.test_case "linear_extensions" `Quick
            test_linear_extensions;
          Alcotest.test_case "linear_extensions_duplicates" `Quick
            test_linear_extensions_duplicates;
          Alcotest.test_case "restrict" `Quick test_restrict;
        ] );
      ("properties", props);
    ]
