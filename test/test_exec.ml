(* Tests for candidate-execution enumeration: event construction,
   dependency extraction, rf/co well-formedness, final states and the
   checker. *)

module E = Exec.Event

let parse = Litmus.parse

let execs src = Exec.of_test (parse src)

let one_thread body =
  Printf.sprintf "C t\n{ x=0; y=0; z=0; }\nP0(int *x, int *y, int *z) {\n%s\n}\nexists (x=0)"
    body

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

let events_of_thread x tid =
  Array.to_list x.Exec.events |> List.filter (fun (e : E.t) -> e.tid = tid)

let test_event_mapping () =
  (* Table 3: each primitive yields exactly its events *)
  let check body expected =
    let x = List.hd (execs (one_thread body)) in
    let evs =
      events_of_thread x 0
      |> List.map (fun (e : E.t) -> (e.dir, e.annot))
    in
    Alcotest.(check bool) body true (evs = expected)
  in
  check "WRITE_ONCE(x, 1);" [ (E.W, E.Once) ];
  check "smp_store_release(x, 1);" [ (E.W, E.Release) ];
  check "smp_mb();" [ (E.F, E.Mb) ];
  check "int r1 = xchg_relaxed(x, 1);" [ (E.R, E.Once); (E.W, E.Once) ];
  check "int r1 = xchg_acquire(x, 1);" [ (E.R, E.Acquire); (E.W, E.Once) ];
  check "int r1 = xchg_release(x, 1);" [ (E.R, E.Once); (E.W, E.Release) ];
  check "int r1 = xchg(x, 1);"
    [ (E.F, E.Mb); (E.R, E.Once); (E.W, E.Once); (E.F, E.Mb) ];
  check "int r1 = rcu_dereference(x);" [ (E.R, E.Once); (E.F, E.Rb_dep) ]

let test_init_writes () =
  let x = List.hd (execs (one_thread "WRITE_ONCE(x, 1);")) in
  let inits =
    Array.to_list x.Exec.events |> List.filter E.is_init
  in
  Alcotest.(check int) "one init per global" 3 (List.length inits);
  List.iter
    (fun (e : E.t) ->
      Alcotest.(check bool) "init is a write by no thread" true
        (e.dir = E.W && e.tid = -1))
    inits

let test_po_total_per_thread () =
  List.iter
    (fun x ->
      let evs = events_of_thread x 0 in
      List.iter
        (fun (a : E.t) ->
          List.iter
            (fun (b : E.t) ->
              if a.id <> b.id then
                Alcotest.(check bool) "po total in thread" true
                  (Rel.mem a.id b.id x.Exec.po || Rel.mem b.id a.id x.Exec.po))
            evs)
        evs)
    (execs (one_thread "WRITE_ONCE(x, 1);\nsmp_mb();\nint r1 = READ_ONCE(y);"))

(* ------------------------------------------------------------------ *)
(* Dependencies                                                        *)
(* ------------------------------------------------------------------ *)

let test_data_dep () =
  let x =
    execs (one_thread "int r1 = READ_ONCE(x);\nWRITE_ONCE(y, r1 + 1);")
    |> List.hd
  in
  Alcotest.(check int) "one data edge" 1 (Rel.cardinal x.Exec.data);
  Alcotest.(check bool) "read to write" true
    (Rel.exists
       (fun a b ->
         E.is_read x.Exec.events.(a) && E.is_write x.Exec.events.(b))
       x.Exec.data)

let test_addr_dep () =
  let x =
    execs
      "C a\n{ y=&z; z=0; }\nP0(int *y) {\n  int r1 = READ_ONCE(y);\n  int r2 = READ_ONCE(*r1);\n}\nexists (0:r2=0)"
    |> List.hd
  in
  Alcotest.(check int) "one addr edge" 1 (Rel.cardinal x.Exec.addr)

let test_ctrl_dep () =
  let x =
    execs
      (one_thread
         "int r1 = READ_ONCE(x);\nif (r1 == 0) {\n  WRITE_ONCE(y, 1);\n  smp_mb();\n}")
    |> List.hd
  in
  (* ctrl covers every event in the taken branch *)
  Alcotest.(check int) "ctrl edges" 2 (Rel.cardinal x.Exec.ctrl)

let test_ctrl_scope_ends_at_join () =
  let x =
    execs
      (one_thread
         "int r1 = READ_ONCE(x);\nif (r1 == 0) {\n  WRITE_ONCE(y, 1);\n}\nWRITE_ONCE(z, 1);")
    |> List.hd
  in
  (* the write to z after the join carries no control dependency *)
  let z_writes =
    Array.to_list x.Exec.events
    |> List.filter (fun (e : E.t) -> E.is_write e && e.loc = "z")
  in
  List.iter
    (fun (e : E.t) ->
      Alcotest.(check bool) "no ctrl into z" false
        (Rel.exists (fun _ b -> b = e.id) x.Exec.ctrl))
    z_writes

let test_dep_chain_through_assign () =
  let x =
    execs
      (one_thread
         "int r1 = READ_ONCE(x);\nint r2 = r1 ^ r1;\nWRITE_ONCE(y, r2);")
    |> List.hd
  in
  (* data flows through the pure assignment: still one read-to-write edge *)
  Alcotest.(check int) "data through assign" 1 (Rel.cardinal x.Exec.data)

let test_rmw_edges () =
  let x = execs (one_thread "int r1 = xchg(x, 1);") |> List.hd in
  Alcotest.(check int) "one rmw edge" 1 (Rel.cardinal x.Exec.rmw);
  Rel.iter
    (fun a b ->
      Alcotest.(check bool) "rmw: read to write, same loc" true
        (E.is_read x.Exec.events.(a)
        && E.is_write x.Exec.events.(b)
        && x.Exec.events.(a).loc = x.Exec.events.(b).loc))
    x.Exec.rmw

(* ------------------------------------------------------------------ *)
(* Witness well-formedness, as properties over all enumerated          *)
(* executions of the battery                                           *)
(* ------------------------------------------------------------------ *)

let for_all_battery_execs f =
  List.for_all
    (fun (e : Harness.Battery.entry) ->
      List.for_all (f e) (Exec.of_test (Harness.Battery.test_of e)))
    Harness.Battery.all

let test_rf_wellformed () =
  Alcotest.(check bool) "rf wellformed" true
    (for_all_battery_execs (fun _ x ->
         (* each read has exactly one rf source; same loc; same value *)
         Rel.Iset.for_all
           (fun r ->
             let sources =
               Rel.fold
                 (fun w r' acc -> if r' = r then w :: acc else acc)
                 x.Exec.rf []
             in
             List.length sources = 1
             &&
             let w = List.hd sources in
             E.is_write x.Exec.events.(w)
             && x.Exec.events.(w).loc = x.Exec.events.(r).loc
             && x.Exec.events.(w).v = x.Exec.events.(r).v)
           x.Exec.reads))

let test_co_total_per_location () =
  Alcotest.(check bool) "co total per location" true
    (for_all_battery_execs (fun _ x ->
         let locs =
           Rel.Iset.fold
             (fun w acc ->
               let l = x.Exec.events.(w).E.loc in
               if List.mem l acc then acc else l :: acc)
             x.Exec.writes []
         in
         List.for_all
           (fun l ->
             let ws =
               Rel.Iset.filter
                 (fun w -> x.Exec.events.(w).E.loc = l)
                 x.Exec.writes
             in
             Rel.Iset.for_all
               (fun a ->
                 Rel.Iset.for_all
                   (fun b ->
                     a = b || Rel.mem a b x.Exec.co || Rel.mem b a x.Exec.co)
                   ws)
               ws
             && Rel.is_acyclic (Rel.restrict ws x.Exec.co))
           locs))

let test_init_co_first () =
  Alcotest.(check bool) "init writes are co-minimal" true
    (for_all_battery_execs (fun _ x ->
         Rel.Iset.for_all
           (fun i -> not (Rel.exists (fun _ b -> b = i) x.Exec.co))
           x.Exec.init_ws))

let test_fr_definition () =
  Alcotest.(check bool) "fr = rf^-1;co minus id" true
    (for_all_battery_execs (fun _ x ->
         Rel.equal x.Exec.fr
           (Rel.diff
              (Rel.seq (Rel.inverse x.Exec.rf) x.Exec.co)
              (Rel.id_of_set x.Exec.universe))))

let test_int_ext_partition () =
  Alcotest.(check bool) "int and ext partition distinct pairs" true
    (for_all_battery_execs (fun _ x ->
         Rel.is_empty (Rel.inter x.Exec.int_r x.Exec.ext_r)
         && Rel.equal
              (Rel.union x.Exec.int_r x.Exec.ext_r)
              (Rel.diff
                 (Rel.cartesian x.Exec.universe x.Exec.universe)
                 (Rel.id_of_set x.Exec.universe))))

(* ------------------------------------------------------------------ *)
(* Enumeration counts and final states                                 *)
(* ------------------------------------------------------------------ *)

let test_enumeration_counts () =
  (* MP: 2 reads with 2 possible values each; rf determined by value *)
  Alcotest.(check int) "MP candidates" 4
    (List.length (execs Harness.Battery.(find "MP").source));
  (* a single write and no reads: one execution *)
  Alcotest.(check int) "single write" 1
    (List.length (execs (one_thread "WRITE_ONCE(x, 1);")));
  (* two writes to the same location by different threads: 2 co orders *)
  Alcotest.(check int) "two co orders" 2
    (List.length
       (execs
          "C c\n{ }\nP0(int *x) { WRITE_ONCE(x, 1); }\nP1(int *x) { WRITE_ONCE(x, 2); }\nexists (x=1)"))

let test_conditionals_prune () =
  (* the branch not taken emits no events *)
  let xs =
    execs
      (one_thread
         "int r1 = READ_ONCE(x);\nif (r1 == 1) {\n  WRITE_ONCE(y, 1);\n}")
  in
  List.iter
    (fun x ->
      let r1 =
        Array.to_list x.Exec.events
        |> List.find (fun (e : E.t) -> E.is_read e)
      in
      let y_written =
        Array.to_list x.Exec.events
        |> List.exists (fun (e : E.t) ->
               E.is_write e && (not (E.is_init e)) && e.loc = "y")
      in
      Alcotest.(check bool) "write iff branch taken" (r1.v = 1) y_written)
    xs

let test_final_memory () =
  (* enumeration also yields co orders that contradict po; the coherent
     ones (kept by any model) must end with the last write *)
  let t = parse "C fm\n{ }\nP0(int *x) { WRITE_ONCE(x, 1);\nWRITE_ONCE(x, 2); }\nexists (x=2)" in
  let all = Exec.of_test t in
  let coherent = List.filter Models.Sc.consistent all in
  Alcotest.(check bool) "some execution is incoherent" true
    (List.length coherent < List.length all);
  List.iter
    (fun x ->
      Alcotest.(check int) "last write wins" 2 (Exec.final_mem x "x"))
    coherent

let test_computed_write_values () =
  (* the read-value domain must grow to include computed values: r1+1 *)
  let t =
    parse
      "C cv\n{ }\nP0(int *x, int *y) { int r1 = READ_ONCE(x); WRITE_ONCE(y, r1 + 1); }\nP1(int *x, int *y) { WRITE_ONCE(x, 1); int r2 = READ_ONCE(y); }\nexists (1:r2=2)"
  in
  let r = Exec.Check.run (module Models.Sc) t in
  Alcotest.(check bool) "2 = 1+1 reachable" true
    (r.Exec.Check.verdict = Exec.Check.Allow)

let test_check_quantifiers () =
  let allow src = (Exec.Check.run (module Models.Sc) (parse src)).Exec.Check.verdict in
  let base = "C q\n{ }\nP0(int *x) { WRITE_ONCE(x, 1); }\n" in
  Alcotest.(check bool) "exists sat" true (allow (base ^ "exists (x=1)") = Exec.Check.Allow);
  Alcotest.(check bool) "exists unsat" true (allow (base ^ "exists (x=2)") = Exec.Check.Forbid);
  (* forall x=1 holds in every execution: no violating execution *)
  Alcotest.(check bool) "forall holds" true (allow (base ^ "forall (x=1)") = Exec.Check.Forbid);
  Alcotest.(check bool) "forall violated" true (allow (base ^ "forall (x=2)") = Exec.Check.Allow)

let test_outcomes_cover_condition () =
  let t = parse Harness.Battery.(find "SB").source in
  let r = Exec.Check.run (module Models.Sc) t in
  (* SC allows 3 of the 4 SB outcomes; the weak one is absent *)
  Alcotest.(check int) "SC outcomes of SB" 3 (List.length r.Exec.Check.outcomes);
  Alcotest.(check bool) "no weak outcome" true
    (List.for_all (fun (_, m) -> not m) r.Exec.Check.outcomes)

(* ------------------------------------------------------------------ *)
(* Budgets                                                             *)
(* ------------------------------------------------------------------ *)

module B = Exec.Budget

let sb_src = Harness.Battery.(find "SB").source

let budget_reason (r : Exec.Check.result) =
  match r.Exec.Check.verdict with
  | Exec.Check.Unknown (Exec.Check.Budget_exceeded reason) -> Some reason
  | _ -> None

let test_budget_saturating () =
  Alcotest.(check int) "mul" 6 (B.sat_mul 2 3);
  (* saturates at the cap instead of wrapping negative *)
  Alcotest.(check bool) "mul saturates" true
    (B.sat_mul max_int 2 > 0 && B.sat_mul max_int 2 >= max_int / 2);
  Alcotest.(check bool) "mul idempotent at cap" true
    (B.sat_mul (B.sat_mul max_int 2) 2 = B.sat_mul max_int 2);
  Alcotest.(check int) "fact" 24 (B.sat_fact 4);
  Alcotest.(check bool) "fact saturates" true
    (B.sat_fact 64 = B.sat_mul max_int 2)

let test_budget_timeout () =
  let b = B.start (B.limits ~timeout:0.0 ()) in
  let r = Exec.Check.run ~budget:b (module Models.Sc) (parse sb_src) in
  match budget_reason r with
  | Some (B.Timed_out _) -> ()
  | _ -> Alcotest.failf "expected Timed_out, got %s"
           (Exec.Check.verdict_to_string r.Exec.Check.verdict)

let test_budget_candidates () =
  let b = B.start (B.limits ~max_candidates:1 ()) in
  let r = Exec.Check.run ~budget:b (module Models.Sc) (parse sb_src) in
  match budget_reason r with
  | Some (B.Too_many_candidates 1) -> ()
  | _ -> Alcotest.failf "expected Too_many_candidates, got %s"
           (Exec.Check.verdict_to_string r.Exec.Check.verdict)

let test_budget_events () =
  let b = B.start (B.limits ~max_events:2 ()) in
  let r = Exec.Check.run ~budget:b (module Models.Sc) (parse sb_src) in
  match budget_reason r with
  | Some (B.Too_many_events (_, 2)) -> ()
  | _ -> Alcotest.failf "expected Too_many_events, got %s"
           (Exec.Check.verdict_to_string r.Exec.Check.verdict)

let test_budget_enumeration_raises () =
  (* the raw enumeration raises the typed exception (Check.run converts) *)
  match Exec.of_test ~budget:(B.start (B.limits ~max_candidates:1 ())) (parse sb_src) with
  | _ -> Alcotest.fail "expected Exceeded"
  | exception B.Exceeded (B.Too_many_candidates _) -> ()

let test_budget_happy_path () =
  (* the default budget never changes a small test's verdict *)
  List.iter
    (fun name ->
      let t = parse Harness.Battery.(find name).source in
      let plain = (Exec.Check.run (module Models.Sc) t).Exec.Check.verdict in
      let budgeted =
        (Exec.Check.run ~budget:(B.start B.default) (module Models.Sc) t)
          .Exec.Check.verdict
      in
      Alcotest.(check bool) (name ^ " verdict unchanged") true
        (plain = budgeted))
    [ "SB"; "MP"; "LB" ]

(* ------------------------------------------------------------------ *)
(* Dot export                                                          *)
(* ------------------------------------------------------------------ *)

let test_dot_export () =
  let x = List.hd (execs Harness.Battery.(find "MP+wmb+rmb").source) in
  let dot = Exec.Dot.to_string x in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  (* one node per event, clusters per thread, rf edges labelled *)
  Array.iter
    (fun (e : E.t) ->
      let needle = Printf.sprintf "e%d " e.id in
      let contains s sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "event node present" true (contains dot needle))
    x.Exec.events;
  let contains s sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "thread clusters" true (contains dot "cluster_T1");
  Alcotest.(check bool) "rf edges" true (contains dot "label=\"rf\"")

(* ------------------------------------------------------------------ *)
(* Property: generated programs enumerate cleanly                      *)
(* ------------------------------------------------------------------ *)

let prop_enumeration_invariants =
  let gen =
    let open QCheck2.Gen in
    let loc = oneofl [ "x"; "y" ] in
    let instr tid k =
      oneof
        [
          map2 (fun l v -> Litmus.Build.write l v) loc (int_range 1 2);
          map (fun l -> Litmus.Build.read (Printf.sprintf "r%d%d" tid k) l) loc;
          return Litmus.Build.mb;
        ]
    in
    let thread tid =
      let* n = int_range 1 3 in
      let rec go k acc =
        if k = n then return (List.rev acc)
        else
          let* i = instr tid k in
          go (k + 1) (i :: acc)
      in
      go 0 []
    in
    let* t0 = thread 0 in
    let* t1 = thread 1 in
    return
      (Litmus.Build.make ~name:"gen" ~threads:[ t0; t1 ]
         ~exists:(Litmus.Build.m_eq "x" 0) ())
  in
  QCheck2.Test.make ~name:"enumerated executions are well-formed" ~count:60
    gen (fun t ->
      let xs = Exec.of_test t in
      xs <> []
      && List.for_all
           (fun x ->
             Rel.Iset.for_all
               (fun r ->
                 Rel.fold
                   (fun _ r' acc -> if r' = r then acc + 1 else acc)
                   x.Exec.rf 0
                 = 1)
               x.Exec.reads
             && Rel.is_acyclic (Rel.restrict x.Exec.writes x.Exec.co))
           xs)

let () =
  Alcotest.run "exec"
    [
      ( "events",
        [
          Alcotest.test_case "table-3 mapping" `Quick test_event_mapping;
          Alcotest.test_case "init writes" `Quick test_init_writes;
          Alcotest.test_case "po total" `Quick test_po_total_per_thread;
        ] );
      ( "dependencies",
        [
          Alcotest.test_case "data" `Quick test_data_dep;
          Alcotest.test_case "addr" `Quick test_addr_dep;
          Alcotest.test_case "ctrl" `Quick test_ctrl_dep;
          Alcotest.test_case "ctrl scope" `Quick test_ctrl_scope_ends_at_join;
          Alcotest.test_case "chain through assign" `Quick
            test_dep_chain_through_assign;
          Alcotest.test_case "rmw" `Quick test_rmw_edges;
        ] );
      ( "witnesses",
        [
          Alcotest.test_case "rf wellformed" `Quick test_rf_wellformed;
          Alcotest.test_case "co total per loc" `Quick
            test_co_total_per_location;
          Alcotest.test_case "init co-first" `Quick test_init_co_first;
          Alcotest.test_case "fr definition" `Quick test_fr_definition;
          Alcotest.test_case "int/ext partition" `Quick
            test_int_ext_partition;
        ] );
      ( "enumeration",
        [
          Alcotest.test_case "counts" `Quick test_enumeration_counts;
          Alcotest.test_case "conditionals" `Quick test_conditionals_prune;
          Alcotest.test_case "final memory" `Quick test_final_memory;
          Alcotest.test_case "computed values" `Quick
            test_computed_write_values;
          Alcotest.test_case "quantifiers" `Quick test_check_quantifiers;
          Alcotest.test_case "outcomes" `Quick test_outcomes_cover_condition;
        ] );
      ( "budget",
        [
          Alcotest.test_case "saturating arithmetic" `Quick
            test_budget_saturating;
          Alcotest.test_case "timeout" `Quick test_budget_timeout;
          Alcotest.test_case "candidate cap" `Quick test_budget_candidates;
          Alcotest.test_case "event cap" `Quick test_budget_events;
          Alcotest.test_case "enumeration raises" `Quick
            test_budget_enumeration_raises;
          Alcotest.test_case "happy path unchanged" `Quick
            test_budget_happy_path;
        ] );
      ("dot", [ Alcotest.test_case "export" `Quick test_dot_export ]);
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_enumeration_invariants ] );
    ]
