(* Tests for the cat language: lexer, parser, interpreter semantics, the
   shipped models, and full agreement with the native OCaml models. *)

module I = Cat.Interp
module Iset = Rel.Iset

let parse_model = Cat.parse

(* A tiny fixed execution to evaluate expressions against. *)
let sample_exec =
  List.hd
    (Exec.of_test
       (Litmus.parse
          "C s\n{ x=0; }\nP0(int *x) { WRITE_ONCE(x, 1); }\nP1(int *x, int *y) { int r1 = READ_ONCE(x); WRITE_ONCE(y, r1); }\nexists (1:r1=1)"))

let env = I.env_of_execution sample_exec

(* ------------------------------------------------------------------ *)
(* Lexer / parser                                                      *)
(* ------------------------------------------------------------------ *)

let test_lexer_tokens () =
  let toks = Cat.Lexer.tokens "let a-b = rf^-1 ; [W] | co^+ & x^* ~y (* c *) 0" in
  let strs = List.map (fun (t, _) -> Cat.Lexer.to_string t) toks in
  Alcotest.(check (list string)) "tokens"
    [ "let"; "a-b"; "="; "rf"; "^-1"; ";"; "["; "W"; "]"; "|"; "co"; "^+";
      "&"; "x"; "^*"; "~"; "y"; "0"; "<eof>" ]
    strs

let test_parser_title () =
  Alcotest.(check string) "string title" "My model"
    (parse_model "\"My model\"\nempty 0 as e").Cat.Ast.title

let test_parser_precedence () =
  (* a ; b | c ; d parses as (a;b) | (c;d) *)
  let m = parse_model "\"t\"\nlet r = po ; rf | co ; fr\nempty 0 as e" in
  match m.Cat.Ast.stmts with
  | Cat.Ast.Let ([ (_, _, Cat.Ast.Union (Cat.Ast.Seq _, Cat.Ast.Seq _)) ], _)
    :: _ ->
      ()
  | _ -> Alcotest.fail "precedence"

let test_parser_postfix () =
  let m = parse_model "\"t\"\nlet r = (rf ; co)^+\nempty 0 as e" in
  match m.Cat.Ast.stmts with
  | Cat.Ast.Let ([ (_, _, Cat.Ast.Plus (Cat.Ast.Seq _)) ], _) :: _ -> ()
  | _ -> Alcotest.fail "postfix"

let test_parser_rec_and () =
  let m =
    parse_model "\"t\"\nlet rec a = b and b = a\nirreflexive a as e"
  in
  match m.Cat.Ast.stmts with
  | Cat.Ast.Let ([ _; _ ], true) :: _ -> ()
  | _ -> Alcotest.fail "rec-and"

let test_parser_errors () =
  let bad src =
    match parse_model src with
    | exception (Cat.Parser.Error _ | Cat.Lexer.Error _) -> true
    | _ -> false
  in
  Alcotest.(check bool) "missing =" true (bad "\"t\"\nlet a po");
  Alcotest.(check bool) "bad hat" true (bad "\"t\"\nlet a = po^2\nempty 0");
  Alcotest.(check bool) "stray token" true (bad "\"t\"\n] let a = po")

(* Typed errors must carry the line the failure occurred on: the batch
   runner's classified reports depend on these positions. *)
let test_error_positions () =
  (match parse_model "\"t\"\nlet a = po\nlet b = ]\n" with
  | exception Cat.Parser.Error (msg, line) ->
      Alcotest.(check int) "parser error line" 3 line;
      Alcotest.(check bool) "parser error message" true
        (String.length msg > 0)
  | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "stray bracket accepted");
  match parse_model "\"t\"\nlet a = po\nlet b = a @ a\n" with
  | exception Cat.Lexer.Error (msg, line) ->
      Alcotest.(check int) "lexer error line" 3 line;
      Alcotest.(check bool) "lexer error message" true
        (String.length msg > 0)
  | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "bad character accepted"

(* ------------------------------------------------------------------ *)
(* Interpreter semantics                                               *)
(* ------------------------------------------------------------------ *)

let run_checks src =
  I.run (parse_model src) env
  |> List.map (fun (o : I.outcome) -> (o.check_name, o.holds))

let test_acyclic_check () =
  Alcotest.(check (list (pair string bool)))
    "po is acyclic"
    [ ("c", true) ]
    (run_checks "\"t\"\nacyclic po as c");
  Alcotest.(check (list (pair string bool)))
    "po U po^-1 is cyclic"
    [ ("c", false) ]
    (run_checks "\"t\"\nacyclic po | po^-1 as c")

let test_empty_check () =
  Alcotest.(check (list (pair string bool)))
    "rf nonempty; rmw empty"
    [ ("a", false); ("b", true) ]
    (run_checks "\"t\"\nempty rf as a\nempty rmw as b")

let test_brackets_and_product () =
  (* [W] ; po ; [R] vs the full product *)
  Alcotest.(check (list (pair string bool)))
    "bracket filtering"
    [ ("c", true) ]
    (run_checks "\"t\"\nempty ([W] ; po ; [R]) \\ (W * R) as c")

let test_set_operations () =
  Alcotest.(check (list (pair string bool)))
    "M = R | W"
    [ ("c", true) ]
    (run_checks "\"t\"\nempty (R | W) \\ M as c");
  Alcotest.(check (list (pair string bool)))
    "W & R empty"
    [ ("c", true) ]
    (run_checks "\"t\"\nempty W & R as c")

let test_fr_from_primitives () =
  Alcotest.(check (list (pair string bool)))
    "fr = rf^-1;co minus id"
    [ ("c", true) ]
    (run_checks
       "\"t\"\nlet myfr = (rf^-1 ; co) \\ id\nempty (myfr \\ fr) | (fr \\ myfr) as c")

let test_function_application () =
  Alcotest.(check (list (pair string bool)))
    "A-cumul"
    [ ("c", true) ]
    (run_checks
       "\"t\"\nlet f(r) = rfe? ; r\nempty (f(po) \\ (rfe? ; po)) as c")

let test_rec_fixpoint () =
  (* transitive closure by recursion: rec tc = po | tc;tc equals po^+ *)
  Alcotest.(check (list (pair string bool)))
    "recursive closure"
    [ ("c", true) ]
    (run_checks
       "\"t\"\nlet rec tc = po | (tc ; tc)\nempty (tc \\ po^+) | (po^+ \\ tc) as c")

let test_complement () =
  Alcotest.(check (list (pair string bool)))
    "~0 is the full product"
    [ ("c", true) ]
    (run_checks "\"t\"\nempty (_ * _) \\ ~0 as c")

let test_unbound_identifier () =
  match I.run (parse_model "\"t\"\nempty nonsuch as c") env with
  | exception I.Type_error _ -> ()
  | _ -> Alcotest.fail "expected type error"

let test_type_errors () =
  (match I.run (parse_model "\"t\"\nempty W * po as c") env with
  | exception I.Type_error _ -> ()
  | _ -> Alcotest.fail "relation used as set");
  match I.run (parse_model "\"t\"\nlet f(r) = r\nempty f as c") env with
  | exception I.Type_error _ -> ()
  | _ -> Alcotest.fail "function used as relation"

(* ------------------------------------------------------------------ *)
(* Shipped models                                                      *)
(* ------------------------------------------------------------------ *)

let test_stdmodels_parse () =
  List.iter
    (fun (name, _, src) ->
      match parse_model src with
      | _ -> ()
      | exception e ->
          Alcotest.failf "%s does not parse: %s" name (Printexc.to_string e))
    Cat.Stdmodels.all

let test_models_dir_in_sync () =
  (* models/*.cat are generated from Stdmodels; keep them identical *)
  List.iter
    (fun (_, file, src) ->
      let path = Filename.concat "../../../models" file in
      if Sys.file_exists path then begin
        let ic = open_in_bin path in
        let n = in_channel_length ic in
        let disk = really_input_string ic n in
        close_in ic;
        Alcotest.(check bool) (file ^ " in sync") true (disk = src)
      end)
    Cat.Stdmodels.all

let test_lk_cat_named_checks () =
  let outcomes = Cat.outcomes (Lazy.force Cat.lk) sample_exec in
  let names = List.map (fun (o : I.outcome) -> o.check_name) outcomes in
  Alcotest.(check (list string)) "five named axioms"
    [ "sc-per-variable"; "atomicity"; "happens-before"; "propagates-before";
      "rcu" ]
    names

(* Full agreement between cat and native models over every candidate
   execution of the battery. *)
let test_cat_native_agreement () =
  let pairs =
    [
      ("LK", Cat.Stdmodels.lk, (module Lkmm : Exec.Check.MODEL));
      ("SC", Cat.Stdmodels.sc, (module Models.Sc));
      ("x86-TSO", Cat.Stdmodels.tso, (module Models.Tso));
      ("C11", Cat.Stdmodels.c11, (module Models.C11));
      ("C11-psc", Cat.Stdmodels.c11_psc, (module Models.C11.Strengthened));
    ]
  in
  List.iter
    (fun (name, src, native) ->
      let cat_model = parse_model src in
      let module N = (val native : Exec.Check.MODEL) in
      List.iter
        (fun (e : Harness.Battery.entry) ->
          List.iter
            (fun x ->
              Alcotest.(check bool)
                (Printf.sprintf "%s agrees on %s" name e.name)
                (N.consistent x) (Cat.consistent cat_model x))
            (Exec.of_test (Harness.Battery.test_of e)))
        Harness.Battery.all)
    pairs

let test_cat_native_agreement_generated () =
  let rng = Random.State.make [| 5 |] in
  let tests = Diygen.sample ~vocabulary:Diygen.Edge.vocabulary ~rng ~count:25 4 in
  let lk_cat = parse_model Cat.Stdmodels.lk in
  List.iter
    (fun t ->
      List.iter
        (fun x ->
          Alcotest.(check bool)
            (t.Litmus.Ast.name ^ ": cat agrees")
            (Lkmm.consistent x) (Cat.consistent lk_cat x))
        (Exec.of_test t))
    tests

let () =
  Alcotest.run "cat"
    [
      ( "syntax",
        [
          Alcotest.test_case "lexer" `Quick test_lexer_tokens;
          Alcotest.test_case "title" `Quick test_parser_title;
          Alcotest.test_case "precedence" `Quick test_parser_precedence;
          Alcotest.test_case "postfix" `Quick test_parser_postfix;
          Alcotest.test_case "rec-and" `Quick test_parser_rec_and;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "error positions" `Quick test_error_positions;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "acyclic" `Quick test_acyclic_check;
          Alcotest.test_case "empty" `Quick test_empty_check;
          Alcotest.test_case "brackets/product" `Quick
            test_brackets_and_product;
          Alcotest.test_case "set operations" `Quick test_set_operations;
          Alcotest.test_case "fr from primitives" `Quick
            test_fr_from_primitives;
          Alcotest.test_case "functions" `Quick test_function_application;
          Alcotest.test_case "rec fixpoint" `Quick test_rec_fixpoint;
          Alcotest.test_case "complement" `Quick test_complement;
          Alcotest.test_case "unbound id" `Quick test_unbound_identifier;
          Alcotest.test_case "type errors" `Quick test_type_errors;
        ] );
      ( "models",
        [
          Alcotest.test_case "stdmodels parse" `Quick test_stdmodels_parse;
          Alcotest.test_case "models dir in sync" `Quick
            test_models_dir_in_sync;
          Alcotest.test_case "lk.cat named checks" `Quick
            test_lk_cat_named_checks;
          Alcotest.test_case "cat = native (battery)" `Slow
            test_cat_native_agreement;
          Alcotest.test_case "cat = native (generated)" `Slow
            test_cat_native_agreement_generated;
        ] );
    ]
