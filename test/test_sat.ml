(* The symbolic SAT backend, three layers deep:

   - the CDCL core differentially against a transparently-correct DPLL
     reference on random small instances (outcome agreement, model
     validity, learned-clause entailment);
   - the encoder end-to-end against the enumerative engines: verdict
     agreement over the whole golden corpus, through the public
     {!Exec.Oracle.run} entry the harness uses;
   - the re-validation contract: tampered axioms must surface as a
     classified [Spurious] error, never as a verdict; and the two
     budget-breaking tests the enumerative engines give up on must come
     back decided. *)

module S = Sat.Solver

(* ------------------------------------------------------------------ *)
(* CDCL vs the DPLL reference                                          *)
(* ------------------------------------------------------------------ *)

(* A random instance in a regime that mixes sat and unsat: up to 8
   variables, up to 30 clauses of 1-3 literals. *)
let gen_instance =
  QCheck.Gen.(
    int_range 1 8 >>= fun nvars ->
    int_range 1 30 >>= fun nclauses ->
    let gen_lit =
      map2
        (fun v neg -> if neg then -v else v)
        (int_range 1 nvars) bool
    in
    list_size (return nclauses) (list_size (int_range 1 3) gen_lit)
    >|= fun clauses -> (nvars, clauses))

let arb_instance =
  QCheck.make ~print:(fun (n, cs) ->
      Printf.sprintf "nvars=%d clauses=[%s]" n
        (String.concat "; "
           (List.map
              (fun c -> String.concat " " (List.map string_of_int c))
              cs)))
    gen_instance

let cdcl_solve nvars clauses =
  let s = S.create () in
  for _ = 1 to nvars do
    ignore (S.new_var s)
  done;
  List.iter (S.add_clause s) clauses;
  (s, S.solve s)

let prop_agrees_with_naive (nvars, clauses) =
  let _, outcome = cdcl_solve nvars clauses in
  let naive = Sat.Naive.solve ~nvars clauses in
  match (outcome, naive) with
  | S.Sat, Some _ | S.Unsat, None -> true
  | S.Sat, None | S.Unsat, Some _ -> false

let prop_model_satisfies (nvars, clauses) =
  let s, outcome = cdcl_solve nvars clauses in
  match outcome with
  | S.Unsat -> QCheck.assume_fail ()
  | S.Sat ->
      let model = Array.make (nvars + 1) false in
      for v = 1 to nvars do
        model.(v) <- S.value s v
      done;
      Sat.Naive.check model clauses

(* Every learned clause is entailed by the original instance:
   original /\ ~clause must be unsatisfiable (checked by the
   reference). *)
let prop_learned_entailed (nvars, clauses) =
  let s, _ = cdcl_solve nvars clauses in
  List.for_all
    (fun learnt ->
      let negated = List.map (fun l -> [ -l ]) learnt in
      Sat.Naive.solve ~nvars (clauses @ negated) = None)
    (S.learnt_clauses s)

let qcheck_cases =
  List.map
    (QCheck_alcotest.to_alcotest ~long:false)
    [
      QCheck.Test.make ~count:500 ~name:"cdcl agrees with dpll reference"
        arb_instance prop_agrees_with_naive;
      QCheck.Test.make ~count:500 ~name:"cdcl models satisfy the instance"
        arb_instance prop_model_satisfies;
      QCheck.Test.make ~count:200 ~name:"learned clauses are entailed"
        arb_instance prop_learned_entailed;
    ]

(* ------------------------------------------------------------------ *)
(* Corpus agreement                                                    *)
(* ------------------------------------------------------------------ *)

let corpus_dir =
  (* tests run from _build/default/test *)
  List.find_opt Sys.file_exists [ "../../../corpus"; "corpus" ]

let manifest dir =
  Harness.Runner.read_file (Filename.concat dir "MANIFEST")
  |> String.split_on_char '\n'
  |> List.filter_map (fun line ->
         if line = "" || line.[0] = '#' then None
         else
           match String.split_on_char ' ' line with
           | [ file; lk; _c11 ] -> Some (file, lk)
           | _ -> Alcotest.failf "bad manifest line: %s" line)

let sat_check ?(backend = Exec.Check.Sat) t =
  Exec.Oracle.run ~budget:(Exec.Budget.start Exec.Budget.default) ~backend
    Lkmm.oracle t

(* Every corpus test: the symbolic verdict must equal both the golden
   manifest verdict and the batched engine's, with zero fallbacks (the
   native oracle ships a solver) and solver counters present. *)
let test_corpus_agreement () =
  match corpus_dir with
  | None -> Alcotest.fail "corpus directory not found"
  | Some dir ->
      let entries = manifest dir in
      Alcotest.(check bool) "corpus is substantial" true
        (List.length entries > 200);
      List.iter
        (fun (file, lk) ->
          let t =
            Litmus.parse
              (Harness.Runner.read_file (Filename.concat dir file))
          in
          let r = sat_check t in
          Alcotest.(check string) (file ^ " sat = golden") lk
            (Exec.Check.verdict_to_string r.Exec.Check.verdict);
          (match r.Exec.Check.sat with
          | Some s ->
              Alcotest.(check bool) (file ^ " no fallback") false
                s.Exec.Check.fallback
          | None -> Alcotest.failf "%s: sat result carries no sat stats" file);
          Alcotest.(check string) (file ^ " backend tag") "sat"
            (Exec.Check.backend_to_string r.Exec.Check.backend);
          let b = sat_check ~backend:Exec.Check.Batch t in
          Alcotest.(check string) (file ^ " sat = batch")
            (Exec.Check.verdict_to_string b.Exec.Check.verdict)
            (Exec.Check.verdict_to_string r.Exec.Check.verdict))
        entries

(* ------------------------------------------------------------------ *)
(* Budget-breakers: Unknown enumeratively, decided symbolically        *)
(* ------------------------------------------------------------------ *)

let big_allow =
  let b = Buffer.create 256 in
  Buffer.add_string b
    "C big-allow\n{ }\nP0(int *x) { int r0 = READ_ONCE(*x); }\n";
  for i = 1 to 9 do
    Buffer.add_string b
      (Printf.sprintf "P%d(int *x) { WRITE_ONCE(*x, 1); }\n" i)
  done;
  Buffer.add_string b "exists (0:r0=1)\n";
  Litmus.parse (Buffer.contents b)

let big_forbid =
  let b = Buffer.create 256 in
  Buffer.add_string b "C big-forbid\n{ }\n";
  Buffer.add_string b
    "P0(int *x, int *y) { WRITE_ONCE(*x, 1); smp_mb(); int r0 = \
     READ_ONCE(*y); }\n";
  Buffer.add_string b
    "P1(int *x, int *y) { WRITE_ONCE(*y, 1); smp_mb(); int r1 = \
     READ_ONCE(*x); }\n";
  for i = 2 to 10 do
    Buffer.add_string b
      (Printf.sprintf "P%d(int *z) { WRITE_ONCE(*z, 1); }\n" i)
  done;
  Buffer.add_string b "exists ((0:r0=0 /\\ 1:r1=0))\n";
  Litmus.parse (Buffer.contents b)

let expect_unknown name r =
  match r.Exec.Check.verdict with
  | Exec.Check.Unknown (Exec.Check.Budget_exceeded _) -> ()
  | v ->
      Alcotest.failf "%s: expected budget Unknown enumeratively, got %s" name
        (Exec.Check.verdict_to_string v)

let expect_verdict name want r =
  Alcotest.(check string) name want
    (Exec.Check.verdict_to_string r.Exec.Check.verdict)

let test_budget_breakers () =
  (* enumerative engines trip the default candidate cap on both *)
  expect_unknown "big-allow batch" (sat_check ~backend:Exec.Check.Batch big_allow);
  expect_unknown "big-forbid batch"
    (sat_check ~backend:Exec.Check.Batch big_forbid);
  (* the solver decides both under the same budget *)
  expect_verdict "big-allow sat" "Allow" (sat_check big_allow);
  expect_verdict "big-forbid sat" "Forbid" (sat_check big_forbid)

(* ------------------------------------------------------------------ *)
(* The re-validation contract                                          *)
(* ------------------------------------------------------------------ *)

(* SB+mbs: the LK model forbids the relaxed outcome, so a "solver" with
   its axioms gutted finds a witness the scalar model rejects —
   re-validation must turn that into a classified error, never a
   verdict. *)
let sb_mbs =
  Litmus.parse (Harness.Battery.find "SB+mbs").Harness.Battery.source

let test_tampered_axioms_spurious () =
  let tampered = Exec.Solve.make ~axioms:(fun _ -> ()) (module Lkmm) in
  (* budgeted: Spurious is caught and classified as Model_error *)
  (match
     (tampered ~budget:(Exec.Budget.start Exec.Budget.default) sb_mbs)
       .Exec.Check.verdict
   with
  | Exec.Check.Unknown (Exec.Check.Model_error (Exec.Solve.Spurious _)) -> ()
  | v ->
      Alcotest.failf "expected Spurious Model_error, got %s"
        (Exec.Check.verdict_to_string v));
  (* unbudgeted: the hard error propagates *)
  match tampered sb_mbs with
  | exception Exec.Solve.Spurious _ -> ()
  | r ->
      Alcotest.failf "expected Spurious exception, got verdict %s"
        (Exec.Check.verdict_to_string r.Exec.Check.verdict)

(* The counted fallback: requesting Sat from a solver-less oracle runs
   the enumerative path and says so on the result. *)
let test_sat_fallback_counted () =
  let scalar_only = Exec.Oracle.of_model (module Models.Sc) in
  let r =
    Exec.Oracle.run ~backend:Exec.Check.Sat scalar_only sb_mbs
  in
  match r.Exec.Check.sat with
  | Some s ->
      Alcotest.(check bool) "fallback flagged" true s.Exec.Check.fallback
  | None -> Alcotest.fail "fallback result carries no sat stats"

let () =
  Alcotest.run "sat"
    [
      ("cdcl-vs-dpll", qcheck_cases);
      ( "corpus",
        [
          Alcotest.test_case "sat agrees with golden + batch" `Slow
            test_corpus_agreement;
        ] );
      ( "budget-breakers",
        [ Alcotest.test_case "solver decides what enum cannot" `Quick
            test_budget_breakers ] );
      ( "re-validation",
        [
          Alcotest.test_case "tampered axioms surface as Spurious" `Quick
            test_tampered_axioms_spurious;
          Alcotest.test_case "solver-less fallback is counted" `Quick
            test_sat_fallback_counted;
        ] );
    ]
