(* Tests for Harness.Serve: the daemon's protocol edges and failure
   taxonomy — oversized request lines, duplicate ids, malformed JSON,
   mid-request disconnects, deadline-zero requests, chaos-killed and
   wedged workers (supervision, retry, quarantine), graceful SIGTERM
   drain, and verdict-cache recovery across a kill -9 restart.

   The daemon runs as a forked child of the test process (the same
   pattern as test_journal's resume-after-SIGKILL test), so kill -9
   and restart are the real thing. *)

module S = Harness.Serve
module Pr = Harness.Proto
module R = Harness.Runner
module B = Exec.Budget

let src name = (Harness.Battery.find name).Harness.Battery.source
let tmp suffix = Filename.temp_file "serve_test" suffix

(* ------------------------------------------------------------------ *)
(* Daemon lifecycle                                                    *)
(* ------------------------------------------------------------------ *)

let base_config socket =
  {
    S.default with
    S.socket;
    workers = 2;
    queue_bound = 8;
    limits = B.limits ~timeout:5.0 ();
    default_timeout = 5.0;
    wedge_grace = 0.4;
    backoff = 0.02;
    chaos_ops = true;
  }

let start_daemon config =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      let code = try S.run ~config () with _ -> 125 in
      Unix._exit code
  | pid -> pid

(* The daemon is up when its socket accepts a connection. *)
let connect_retry ?(deadline = 30.) socket =
  let stop = Unix.gettimeofday () +. deadline in
  let rec go () =
    match S.Client.connect socket with
    | c -> c
    | exception Unix.Unix_error _ ->
        if Unix.gettimeofday () > stop then
          Alcotest.fail "daemon did not come up"
        else begin
          Unix.sleepf 0.05;
          go ()
        end
  in
  go ()

let stop_daemon pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] pid)
  with Unix.Unix_error (Unix.ECHILD, _, _) -> () (* already reaped *)

let with_daemon ?(configure = fun c -> c) f =
  let socket = tmp ".sock" in
  Sys.remove socket;
  let config = configure (base_config socket) in
  let pid = start_daemon config in
  Fun.protect
    ~finally:(fun () ->
      stop_daemon pid;
      try Sys.remove socket with Sys_error _ -> ())
    (fun () -> f socket pid)

let ok_response label = function
  | Ok (r : Pr.response) -> r
  | Error e -> Alcotest.failf "%s: %s" label e

let check_cls label expected (r : Pr.response) =
  Alcotest.(check string) label (Pr.cls_name expected) (Pr.cls_name r.Pr.rsp_cls)

(* ------------------------------------------------------------------ *)
(* Basic service behaviour                                             *)
(* ------------------------------------------------------------------ *)

let test_check_and_cache () =
  with_daemon (fun socket _pid ->
      let c = connect_retry socket in
      let r =
        ok_response "ping" (S.Client.ping c)
      in
      check_cls "ping is ok" Pr.Ok_ r;
      let test = src "MP+wmb+rmb" in
      let r1 =
        ok_response "first check"
          (S.Client.check c ~expected:Exec.Check.Forbid test)
      in
      check_cls "verdict matches expectation" Pr.Ok_ r1;
      Alcotest.(check (option string)) "verdict" (Some "Forbid") r1.Pr.rsp_verdict;
      Alcotest.(check (option bool)) "first is a miss" (Some false)
        r1.Pr.rsp_cache_hit;
      let r2 =
        ok_response "second check"
          (S.Client.check c ~expected:Exec.Check.Forbid test)
      in
      check_cls "still ok" Pr.Ok_ r2;
      Alcotest.(check (option bool)) "second is a hit" (Some true)
        r2.Pr.rsp_cache_hit;
      (* A hit is re-judged against *this* request's expectation. *)
      let r3 =
        ok_response "contradicted expectation"
          (S.Client.check c ~expected:Exec.Check.Allow test)
      in
      check_cls "cached verdict contradicts new expectation" Pr.Fail r3;
      Alcotest.(check (option bool)) "also served from cache" (Some true)
        r3.Pr.rsp_cache_hit;
      S.Client.close c)

let test_parse_error_classified () =
  with_daemon (fun socket _pid ->
      let c = connect_retry socket in
      let r =
        ok_response "broken test" (S.Client.check c "C broken\n{ x=0;\nP0(")
      in
      check_cls "parse error is class error" Pr.Error r;
      Alcotest.(check (option string)) "entry status" (Some "error")
        r.Pr.rsp_status;
      S.Client.close c)

let test_deadline_zero () =
  with_daemon (fun socket _pid ->
      let c = connect_retry socket in
      let r =
        ok_response "deadline-zero"
          (S.Client.check c ~timeout_ms:0 (src "SB"))
      in
      check_cls "already-expired deadline is unknown" Pr.Unknown r;
      (* the daemon is unscathed *)
      check_cls "ping after" Pr.Ok_ (ok_response "ping" (S.Client.ping c));
      S.Client.close c)

(* ------------------------------------------------------------------ *)
(* Telemetry: metrics op, trace propagation, flight post-mortems       *)
(* ------------------------------------------------------------------ *)

module J = Harness.Journal.Json

let test_metrics_op () =
  with_daemon (fun socket _pid ->
      let c = connect_retry socket in
      let _ = ok_response "warm check" (S.Client.check c (src "SB")) in
      let r = ok_response "metrics" (S.Client.metrics c) in
      check_cls "metrics is ok" Pr.Ok_ r;
      let m =
        match J.mem "metrics" r.Pr.rsp_json with
        | Some m -> m
        | None -> Alcotest.fail "response has no metrics member"
      in
      Alcotest.(check (option string)) "schema" (Some "lkmetrics-1")
        (Option.bind (J.mem "schema" m) J.str);
      List.iter
        (fun k ->
          Alcotest.(check bool) (k ^ " present") true (J.mem k m <> None))
        [
          "ts_us"; "uptime_s"; "requests"; "queue_depth"; "workers_live";
          "workers_busy"; "backend"; "served"; "latency_us"; "queue_wait_us";
        ];
      (* the check we just served is on the latency surface, even though
         the collector is off by default *)
      let count =
        Option.bind (Option.bind (J.mem "latency_us" m) (J.mem "count")) J.num
      in
      Alcotest.(check bool) "served check counted in latency_us" true
        (match count with Some n -> n >= 1. | None -> false);
      let live =
        Option.bind (J.mem "workers_live" m) J.num
      in
      Alcotest.(check (option (float 0.5))) "both workers live" (Some 2.) live;
      S.Client.close c)

let test_trace_propagation () =
  with_daemon (fun socket _pid ->
      let c = connect_retry socket in
      let r =
        ok_response "traced check"
          (S.Client.check c ~trace:"trace-abc" (src "SB"))
      in
      check_cls "traced check ok" Pr.Ok_ r;
      Alcotest.(check (option string)) "trace echoed" (Some "trace-abc")
        r.Pr.rsp_trace;
      (* without an explicit trace the request id names the trace *)
      let r2 =
        ok_response "untraced check"
          (S.Client.check c ~id:"req-7" (src "MP+wmb+rmb"))
      in
      Alcotest.(check (option string)) "default trace is the request id"
        (Some "req-7") r2.Pr.rsp_trace;
      S.Client.close c)

(* The trace id must survive the whole supervision ladder: a kill is
   retried on a replacement worker and finally quarantined; a wedge is
   abandoned-and-replaced.  Both answers must still carry the trace the
   client chose, so a fleet-side collector can join them. *)
let test_trace_stable_across_supervision () =
  with_daemon
    ~configure:(fun c -> { c with S.default_timeout = 0.3; wedge_grace = 0.3 })
    (fun socket _pid ->
      let c = connect_retry socket in
      let r = ok_response "kill" (S.Client.chaos_kill ~trace:"poison-1" c) in
      check_cls "kill quarantined" Pr.Quarantined r;
      Alcotest.(check (option string)) "trace survives retry and quarantine"
        (Some "poison-1") r.Pr.rsp_trace;
      let r2 =
        ok_response "wedge" (S.Client.chaos_wedge ~trace:"wedge-1" c 30.0)
      in
      check_cls "wedge quarantined" Pr.Quarantined r2;
      Alcotest.(check (option string)) "trace survives abandon-and-replace"
        (Some "wedge-1") r2.Pr.rsp_trace;
      S.Client.close c)

(* With the flight recorder armed, a chaos-killed worker's job-start
   checkpoint must name the victim request's trace — readable after the
   daemon itself is SIGKILLed (stop_daemon), exactly the post-mortem
   situation obs_report --postmortem serves. *)
let test_flight_postmortem () =
  let dir = Filename.temp_file "serve_flight" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      with_daemon
        ~configure:(fun c ->
          { c with S.flight_dir = Some dir; flight_interval = 0.1 })
        (fun socket _pid ->
          let c = connect_retry socket in
          let r =
            ok_response "kill" (S.Client.chaos_kill ~trace:"victim-9" c)
          in
          check_cls "kill quarantined" Pr.Quarantined r;
          S.Client.close c);
      (* daemon SIGKILLed by with_daemon: whatever is on disk is all the
         evidence there will ever be *)
      let victims =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f ->
               String.length f > 7 && String.sub f 0 7 = "flight-")
        |> List.concat_map (fun f ->
               Harness.Journal.load_json (Filename.concat dir f))
        |> List.concat_map (fun ckpt ->
               match J.mem "spans" ckpt with
               | Some (J.Arr spans) ->
                   List.filter_map
                     (fun s -> Option.bind (J.mem "item" s) J.str)
                     spans
               | _ -> [])
      in
      Alcotest.(check bool) "post-mortem names the victim trace" true
        (List.mem "victim-9" victims))

(* ------------------------------------------------------------------ *)
(* Protocol edges                                                      *)
(* ------------------------------------------------------------------ *)

let test_malformed_and_unknown () =
  with_daemon (fun socket _pid ->
      let c = connect_retry socket in
      S.Client.send c "{this is not json";
      check_cls "malformed JSON" Pr.Error (ok_response "recv" (S.Client.recv c));
      S.Client.send c "{\"id\": \"x\", \"op\": \"frobnicate\"}";
      check_cls "unknown op" Pr.Error (ok_response "recv" (S.Client.recv c));
      S.Client.send c "{\"op\": \"ping\"}";
      check_cls "missing id" Pr.Error (ok_response "recv" (S.Client.recv c));
      let r =
        ok_response "unknown model"
          (S.Client.check c ~model:"no-such-model" (src "SB"))
      in
      check_cls "unknown model" Pr.Error r;
      S.Client.close c)

let test_duplicate_ids () =
  with_daemon (fun socket _pid ->
      let c = connect_retry socket in
      let r1 = ok_response "first" (S.Client.check c ~id:"dup" (src "SB")) in
      check_cls "first use of the id" Pr.Ok_ r1;
      let r2 = ok_response "second" (S.Client.check c ~id:"dup" (src "SB")) in
      check_cls "duplicate id rejected" Pr.Error r2;
      (* a different connection may reuse the id *)
      let c2 = connect_retry socket in
      let r3 = ok_response "other conn" (S.Client.check c2 ~id:"dup" (src "SB")) in
      check_cls "ids are per-connection" Pr.Ok_ r3;
      S.Client.close c;
      S.Client.close c2)

let test_oversized_line () =
  with_daemon
    ~configure:(fun c -> { c with S.max_line = 4096 })
    (fun socket _pid ->
      let c = connect_retry socket in
      let big = String.make 20_000 'x' in
      S.Client.send c ("{\"id\": \"big\", \"op\": \"check\", \"test\": \"" ^ big);
      let r = ok_response "oversized" (S.Client.recv c) in
      check_cls "oversized line rejected" Pr.Error r;
      (match r.Pr.rsp_msg with
      | Some m ->
          Alcotest.(check bool) "message names the bound" true
            (String.length m > 0)
      | None -> Alcotest.fail "oversized rejection carries a message");
      (* the rest of the oversized line is discarded, the connection
         survives, and the next request is served normally *)
      check_cls "connection survives" Pr.Ok_
        (ok_response "ping after oversized" (S.Client.ping c));
      S.Client.close c)

let test_disconnect_mid_request () =
  with_daemon (fun socket _pid ->
      (* half a request, then vanish *)
      let c1 = connect_retry socket in
      S.Client.send c1 "{\"id\": \"gone\", \"op\": \"che";
      S.Client.close c1;
      (* a full request whose answer has nowhere to go *)
      let c2 = connect_retry socket in
      S.Client.send c2
        (Pr.check_line ~id:"orphan" (src "SB"));
      S.Client.close c2;
      Unix.sleepf 0.3;
      (* the daemon took both in stride *)
      let c3 = connect_retry socket in
      check_cls "daemon alive after disconnects" Pr.Ok_
        (ok_response "ping" (S.Client.ping c3));
      S.Client.close c3)

(* ------------------------------------------------------------------ *)
(* Supervision: killed and wedged workers                              *)
(* ------------------------------------------------------------------ *)

let test_chaos_kill_quarantines () =
  with_daemon (fun socket _pid ->
      let c = connect_retry socket in
      (* the kill request costs a worker, is retried once, costs the
         replacement too, and is quarantined — never unanswered *)
      let r = ok_response "chaos kill" (S.Client.chaos_kill c) in
      check_cls "poison request quarantined" Pr.Quarantined r;
      (* both lost workers were replaced: real work still completes *)
      let r2 =
        ok_response "check after kills"
          (S.Client.check c ~expected:Exec.Check.Allow (src "SB"))
      in
      check_cls "service recovered" Pr.Ok_ r2;
      S.Client.close c)

let test_chaos_wedge_detected () =
  with_daemon
    ~configure:(fun c -> { c with S.default_timeout = 0.3; wedge_grace = 0.3 })
    (fun socket _pid ->
      let c = connect_retry socket in
      (* wedge far past deadline + grace: the supervisor abandons the
         worker, retries, abandons the retry, quarantines *)
      let t0 = Unix.gettimeofday () in
      let r = ok_response "wedge" (S.Client.chaos_wedge c 30.0) in
      let took = Unix.gettimeofday () -. t0 in
      check_cls "wedged request quarantined" Pr.Quarantined r;
      Alcotest.(check bool) "answered by supervision, not by the wedge"
        true (took < 10.0);
      let r2 =
        ok_response "check after wedges"
          (S.Client.check c ~expected:Exec.Check.Allow (src "SB"))
      in
      check_cls "replacement workers serve" Pr.Ok_ r2;
      S.Client.close c)

(* ------------------------------------------------------------------ *)
(* Restart recovery                                                    *)
(* ------------------------------------------------------------------ *)

let stat_num (r : Pr.response) key =
  match Harness.Journal.Json.mem key r.Pr.rsp_json with
  | Some (Harness.Journal.Json.Num n) -> int_of_float n
  | Some (Harness.Journal.Json.Str s) -> int_of_string s
  | _ -> Alcotest.failf "stats missing %s" key

let test_cache_survives_kill9 () =
  let journal = tmp ".jsonl" in
  Sys.remove journal;
  let socket = tmp ".sock" in
  Sys.remove socket;
  let config =
    { (base_config socket) with S.cache_journal = Some journal; fsync = false }
  in
  let test = src "MP+wmb+rmb" in
  let live_pid = ref None in
  Fun.protect
    ~finally:(fun () ->
      Option.iter stop_daemon !live_pid;
      (try Sys.remove journal with Sys_error _ -> ());
      try Sys.remove socket with Sys_error _ -> ())
    (fun () ->
      (* first life: answer once (a miss), then die without warning *)
      let pid = start_daemon config in
      live_pid := Some pid;
      let c = connect_retry socket in
      let r1 =
        ok_response "first life"
          (S.Client.check c ~expected:Exec.Check.Forbid test)
      in
      check_cls "fresh verdict" Pr.Ok_ r1;
      Alcotest.(check (option bool)) "a miss" (Some false) r1.Pr.rsp_cache_hit;
      S.Client.close c;
      stop_daemon pid (* kill -9: no drain, no close path *);
      (* second life: same journal, the verdict is already known *)
      let pid = start_daemon config in
      live_pid := Some pid;
      let c2 = connect_retry socket in
      let r2 =
        ok_response "second life"
          (S.Client.check c2 ~expected:Exec.Check.Forbid test)
      in
      check_cls "recovered verdict" Pr.Ok_ r2;
      Alcotest.(check (option bool)) "a hit, recovered from the journal"
        (Some true) r2.Pr.rsp_cache_hit;
      (* the hit is visible on the metrics surface *)
      let st = ok_response "stats" (S.Client.stats c2) in
      Alcotest.(check bool) "cache-hit counter counted it" true
        (stat_num st "cache_hits" >= 1);
      Alcotest.(check bool) "recovered entry populates the cache" true
        (stat_num st "cache_size" >= 1);
      S.Client.close c2)

let test_sigterm_drains () =
  with_daemon (fun socket pid ->
      let c = connect_retry socket in
      check_cls "warm" Pr.Ok_ (ok_response "ping" (S.Client.ping c));
      Unix.kill pid Sys.sigterm;
      let _, status = Unix.waitpid [] pid in
      (match status with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED n -> Alcotest.failf "drain exited %d" n
      | Unix.WSIGNALED s -> Alcotest.failf "drain died on signal %d" s
      | Unix.WSTOPPED _ -> Alcotest.fail "stopped");
      Alcotest.(check bool) "socket unlinked after drain" false
        (Sys.file_exists socket);
      S.Client.close c)

let () =
  Alcotest.run "serve"
    [
      ( "service",
        [
          Alcotest.test_case "check, cache hit, re-judged expectation" `Slow
            test_check_and_cache;
          Alcotest.test_case "parse error classified" `Slow
            test_parse_error_classified;
          Alcotest.test_case "deadline zero is unknown" `Slow
            test_deadline_zero;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "metrics op" `Slow test_metrics_op;
          Alcotest.test_case "trace propagation" `Slow test_trace_propagation;
          Alcotest.test_case "trace stable across supervision" `Slow
            test_trace_stable_across_supervision;
          Alcotest.test_case "flight post-mortem after chaos kill" `Slow
            test_flight_postmortem;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "malformed, unknown op, unknown model" `Slow
            test_malformed_and_unknown;
          Alcotest.test_case "duplicate ids" `Slow test_duplicate_ids;
          Alcotest.test_case "oversized line" `Slow test_oversized_line;
          Alcotest.test_case "mid-request disconnect" `Slow
            test_disconnect_mid_request;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "killed workers: retry then quarantine" `Slow
            test_chaos_kill_quarantines;
          Alcotest.test_case "wedged workers: abandon and replace" `Slow
            test_chaos_wedge_detected;
        ] );
      ( "restart",
        [
          Alcotest.test_case "cache survives kill -9" `Slow
            test_cache_survives_kill9;
          Alcotest.test_case "SIGTERM drains cleanly" `Slow test_sigterm_drains;
        ] );
    ]
